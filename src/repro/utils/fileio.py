"""Atomic file publication shared by the on-disk cache/store tiers.

Both the proximity cache (``.npz`` tier) and the experiment run store
(``.json`` tier) publish finished artifacts with the same discipline: write
to a per-process unique dot-prefixed temp sibling, then ``os.replace`` it
onto the final name.  Concurrent writers of the same key never interleave
into one file, and readers only ever see complete payloads.  This module
is the single definition of that discipline (temp naming, rename publish,
cleanup of a failed write) so the two tiers cannot drift apart.
"""

from __future__ import annotations

import os
import re
from contextlib import contextmanager
from pathlib import Path
from collections.abc import Iterator
from uuid import uuid4

__all__ = ["atomic_write_path", "tmp_file_pattern"]


@contextmanager
def atomic_write_path(path: Path) -> Iterator[Path]:
    """Yield a temp sibling of ``path``; publish it atomically on success.

    The temp name is ``.<stem>.<pid>-<8 hex><suffix>`` — unique per writer,
    matched by :func:`tmp_file_pattern` so orphan reapers can find crashed
    writers' leftovers.  If the body raises, the temp file is removed (best
    effort) and nothing is published.
    """
    tmp_path = path.with_name(f".{path.stem}.{os.getpid()}-{uuid4().hex[:8]}{path.suffix}")
    try:
        yield tmp_path
    except BaseException:
        try:
            tmp_path.unlink(missing_ok=True)
        except OSError:
            pass
        raise
    os.replace(tmp_path, path)


def tmp_file_pattern(stem_regex: str, suffix: str) -> re.Pattern[str]:
    """Regex matching :func:`atomic_write_path` temp names for a file family.

    ``stem_regex`` describes the *final* file's stem (e.g. the cache-key
    hex pattern); ``suffix`` is the literal extension including the dot.
    """
    return re.compile(rf"\.{stem_regex}\.\d+-[0-9a-f]{{8}}{re.escape(suffix)}")
