"""Atomic file publication shared by the on-disk cache/store tiers.

Both the proximity cache (``.npz`` tier) and the experiment run store
(``.json`` tier) publish finished artifacts with the same discipline: write
to a per-process unique dot-prefixed temp sibling, then ``os.replace`` it
onto the final name.  Concurrent writers of the same key never interleave
into one file, and readers only ever see complete payloads.  This module
is the single definition of that discipline (temp naming, rename publish,
cleanup of a failed write) so the two tiers cannot drift apart.

The publish step optionally runs under a
:class:`~repro.robustness.retry.RetryPolicy`: the temp file is complete by
then, so a transient ``OSError`` from ``os.replace`` (busy mount, brief
EIO) is safely re-attempted without re-running the writer's body.  The
``fileio.atomic_write`` fault point sits on the same step, which is how the
chaos suite drills exactly that failure.
"""

from __future__ import annotations

import os
import re
from contextlib import contextmanager
from pathlib import Path
from collections.abc import Iterator
from typing import TYPE_CHECKING
from uuid import uuid4

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..robustness.retry import RetryPolicy

__all__ = ["atomic_write_path", "tmp_file_pattern"]


def _publish(tmp_path: Path, path: Path, retry: "RetryPolicy | None") -> None:
    def attempt() -> None:
        # lazy import: robustness.faults is dependency-light, but fileio is
        # imported from nearly everywhere and must not pull it eagerly
        from ..robustness.faults import maybe_hit

        maybe_hit("fileio.atomic_write", path=str(path))
        os.replace(tmp_path, path)

    if retry is None:
        attempt()
    else:
        retry.call(attempt)


@contextmanager
def atomic_write_path(
    path: Path, retry: "RetryPolicy | None" = None
) -> Iterator[Path]:
    """Yield a temp sibling of ``path``; publish it atomically on success.

    The temp name is ``.<stem>.<pid>-<8 hex><suffix>`` — unique per writer,
    matched by :func:`tmp_file_pattern` so orphan reapers can find crashed
    writers' leftovers.  If the body raises, the temp file is removed (best
    effort) and nothing is published.  ``retry`` (a
    :class:`~repro.robustness.retry.RetryPolicy`) re-attempts the *publish*
    step only — the body never re-runs.
    """
    tmp_path = path.with_name(f".{path.stem}.{os.getpid()}-{uuid4().hex[:8]}{path.suffix}")
    try:
        yield tmp_path
    except BaseException:
        try:
            tmp_path.unlink(missing_ok=True)
        except OSError:  # repro-lint: disable=RETRY001 -- best-effort temp cleanup on an already-failing path; retrying cannot help and must not mask the original error
            pass
        raise
    _publish(tmp_path, path, retry)


def tmp_file_pattern(stem_regex: str, suffix: str) -> re.Pattern[str]:
    """Regex matching :func:`atomic_write_path` temp names for a file family.

    ``stem_regex`` describes the *final* file's stem (e.g. the cache-key
    hex pattern); ``suffix`` is the literal extension including the dot.
    """
    return re.compile(rf"\.{stem_regex}\.\d+-[0-9a-f]{{8}}{re.escape(suffix)}")
