"""Logging helpers.

The library never configures the root logger; it only creates namespaced
loggers under ``repro.*`` so applications keep full control of handlers.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger"]


def get_logger(name: str) -> logging.Logger:
    """Return a logger below the ``repro`` namespace.

    ``get_logger("embedding")`` returns the ``repro.embedding`` logger; a
    fully qualified name that already starts with ``repro`` is used as-is.
    """
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)
