"""Numerically stable math primitives used by the skip-gram trainers."""

from __future__ import annotations

import numpy as np

__all__ = [
    "sigmoid",
    "log_sigmoid",
    "softmax",
    "stable_log",
    "clip_norm",
    "row_l2_norms",
    "pairwise_euclidean",
]

# Inputs to exp() are clamped to this magnitude to avoid overflow warnings.
_EXP_CLAMP = 35.0


def sigmoid(x: np.ndarray | float) -> np.ndarray | float:
    """Numerically stable logistic sigmoid ``1 / (1 + exp(-x))``."""
    x = np.clip(x, -_EXP_CLAMP, _EXP_CLAMP)
    return 1.0 / (1.0 + np.exp(-x))


def log_sigmoid(x: np.ndarray | float) -> np.ndarray | float:
    """Numerically stable ``log(sigmoid(x))``.

    Uses the identity ``log σ(x) = -log(1 + exp(-x)) = min(x, 0) - log1p(exp(-|x|))``.
    """
    x = np.asarray(x, dtype=float)
    return np.minimum(x, 0.0) - np.log1p(np.exp(-np.abs(x)))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable softmax along ``axis``."""
    x = np.asarray(x, dtype=float)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def stable_log(x: np.ndarray | float, floor: float = 1e-12) -> np.ndarray | float:
    """``log(max(x, floor))`` — guards against log of zero."""
    return np.log(np.maximum(x, floor))


def clip_norm(vector: np.ndarray, threshold: float) -> np.ndarray:
    """Clip ``vector`` to ℓ2 norm at most ``threshold`` (DPSGD-style).

    Implements ``Clip(g) = g / max(1, ||g||_2 / C)`` from the paper's Eq. (3).
    Works on arrays of any shape; the norm is computed over all entries.
    """
    if threshold <= 0:
        raise ValueError(f"clipping threshold must be positive, got {threshold}")
    vector = np.asarray(vector, dtype=float)
    norm = float(np.linalg.norm(vector))
    scale = max(1.0, norm / threshold)
    return vector / scale


def row_l2_norms(matrix: np.ndarray) -> np.ndarray:
    """Return the ℓ2 norm of each row of a 2-D array."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D array, got shape {matrix.shape}")
    return np.linalg.norm(matrix, axis=1)


def pairwise_euclidean(matrix: np.ndarray) -> np.ndarray:
    """All-pairs Euclidean distance matrix for the rows of ``matrix``.

    Uses the ``||a - b||^2 = ||a||^2 + ||b||^2 - 2 a·b`` expansion, clipping
    tiny negative values caused by floating point error.
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D array, got shape {matrix.shape}")
    sq = np.sum(matrix**2, axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (matrix @ matrix.T)
    np.maximum(d2, 0.0, out=d2)
    return np.sqrt(d2)
