"""Multiprocessing capability detection shared by the parallel subsystems.

Two subsystems fan work out over child processes — the experiment
orchestrator (:mod:`repro.experiments.orchestrator`) and the hogwild
training pool (:mod:`repro.engine.hogwild`) — and both rely on the
``fork`` start method for zero-copy inheritance of large in-memory state
(graphs, subgraph pools, shared-memory handles, runtime-registered cell
kinds).  Platforms without ``fork`` (Windows; macOS defaults to ``spawn``)
must not crash a long sweep halfway through: the helpers here detect the
situation once and degrade to the serial path with a single warning.
"""

from __future__ import annotations

import multiprocessing
import warnings

from .logging import get_logger

__all__ = ["fork_available", "start_method", "serial_fallback", "resolve_fork_workers"]

_LOGGER = get_logger("utils.mp")


def start_method() -> str:
    """The platform's default multiprocessing start method."""
    return multiprocessing.get_start_method()


def fork_available() -> bool:
    """``True`` when child processes are forked (and inherit parent memory)."""
    return start_method() == "fork"


def serial_fallback(reason: str) -> int:
    """Warn once that parallel execution degrades to serial; return ``1``.

    Emitted both on the logger (long-running sweeps watch logs) and as a
    :class:`RuntimeWarning` (interactive callers see it immediately).  The
    caller decides *when* falling back is required; this helper only makes
    the degradation loud and uniform.
    """
    message = f"{reason}; falling back to the serial path (workers=1)"
    _LOGGER.warning("%s", message)
    warnings.warn(message, RuntimeWarning, stacklevel=3)
    return 1


def resolve_fork_workers(workers: int, subsystem: str) -> int:
    """Clamp ``workers`` to 1 (with a warning) when ``fork`` is unavailable.

    Fork is a hard requirement for subsystems whose worker payloads are not
    picklable (closures over shared-memory models, runtime-registered
    callables): under ``spawn``/``forkserver`` the children could never
    reconstruct them.  ``workers == 1`` always passes through untouched.
    """
    workers = int(workers)
    if workers <= 1 or fork_available():
        return workers
    return serial_fallback(
        f"{subsystem} requested workers={workers} but the "
        f"{start_method()!r} multiprocessing start method cannot inherit "
        "the in-memory training state (fork required)"
    )
