"""Random-number-generator helpers.

Every stochastic component in the library accepts either a seed, an existing
:class:`numpy.random.Generator`, or ``None``.  :func:`ensure_rng` normalises
these three cases into a ``Generator`` so the rest of the code never touches
the global numpy random state.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ConfigurationError

__all__ = ["ensure_rng", "spawn_rngs", "repeat_streams"]

#: types accepted wherever the library takes a ``seed`` parameter
_SEED_TYPES = "an int, a numpy.random.Generator, a numpy.random.SeedSequence, or None"


def _reject_bad_seed(seed: object) -> None:
    """Raise :class:`ConfigurationError` naming the offending seed type.

    Without this, a string or float seed survives until numpy's
    ``SeedSequence`` rejects it several frames deep with a bare
    ``TypeError`` that never mentions which trainer parameter was wrong.
    """
    raise ConfigurationError(
        f"seed must be {_SEED_TYPES}; got {type(seed).__name__}: {seed!r}"
    )


def ensure_rng(
    seed: int | np.random.Generator | np.random.SeedSequence | None = None,
) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the given seed-like value.

    Parameters
    ----------
    seed:
        ``None`` for a non-deterministic generator, an ``int`` seed, a
        :class:`numpy.random.SeedSequence`, or an existing ``Generator``
        (returned unchanged).  Anything else raises
        :class:`~repro.exceptions.ConfigurationError` naming the offending
        type, instead of failing deep inside numpy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None or isinstance(seed, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(seed)
    _reject_bad_seed(seed)


def repeat_streams(
    seed: int | np.random.SeedSequence | np.random.Generator | None,
    repeats: int,
) -> tuple[list[np.random.SeedSequence], np.random.SeedSequence]:
    """Split a seed into per-repeat training streams plus one evaluation stream.

    Repeated experiment runs must be mutually independent *and* must not
    collide with the repeats of a neighbouring base seed — the additive
    ``seed + repeat`` convention makes ``(seed=0, repeat=1)`` identical to
    ``(seed=1, repeat=0)``, silently correlating runs that are reported as
    independent.  :meth:`numpy.random.SeedSequence.spawn` namespaces the
    streams instead: children of different parents never coincide.

    Returns ``(training_streams, evaluation_stream)``: one child sequence
    per repeat for the stochastic run itself, plus a single extra child for
    the *evaluation* randomness (e.g. the StrucEqu pair sample), which must
    stay fixed across repeats so the reported SD reflects run-to-run
    variation rather than scoring-sample noise.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if isinstance(seed, np.random.SeedSequence):
        base = seed
    elif isinstance(seed, np.random.Generator):
        # derive entropy from the generator so callers may pass one through
        base = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    elif seed is None or isinstance(seed, (int, np.integer)):
        base = np.random.SeedSequence(seed)
    else:
        _reject_bad_seed(seed)
    children = base.spawn(repeats + 1)
    return children[:repeats], children[repeats]


def spawn_rngs(seed: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent generators derived from ``seed``.

    Useful when an experiment repeats a stochastic run several times and
    wants each repetition to be independently seeded but reproducible.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    base = ensure_rng(seed)
    seeds = base.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
