"""Random-number-generator helpers.

Every stochastic component in the library accepts either a seed, an existing
:class:`numpy.random.Generator`, or ``None``.  :func:`ensure_rng` normalises
these three cases into a ``Generator`` so the rest of the code never touches
the global numpy random state.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn_rngs"]


def ensure_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the given seed-like value.

    Parameters
    ----------
    seed:
        ``None`` for a non-deterministic generator, an ``int`` seed, or an
        existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Create ``count`` independent generators derived from ``seed``.

    Useful when an experiment repeats a stochastic run several times and
    wants each repetition to be independently seeded but reproducible.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    base = ensure_rng(seed)
    seeds = base.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
