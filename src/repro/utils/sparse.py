"""Vectorised helpers for CSR matrices.

scipy's own fancy indexing ``csr[rows, cols]`` materialises an
``np.matrix`` and is slow for large index arrays; the helpers here answer
"what is the stored value at each ``(row, col)`` pair" with one
``np.searchsorted`` over a flattened key array, never densifying.

The trick: in a canonical CSR matrix (sorted indices, no duplicates) the
flat keys ``row * ncols + col`` of the stored entries are strictly
increasing, so membership and value lookup for arbitrary query pairs is a
binary search over one int64 array.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

__all__ = ["csr_entry_keys", "csr_lookup", "indices_in_range"]


def indices_in_range(n: int, *arrays: np.ndarray) -> bool:
    """``True`` iff every index in every array lies in ``[0, n)``.

    The key arithmetic in :func:`csr_lookup` would alias an out-of-range
    index into another row (and numpy would wrap negatives), so callers
    must validate with this before looking up — raising their own
    domain-specific error on ``False``.
    """
    return all(
        (not a.size) or (int(a.min()) >= 0 and int(a.max()) < n) for a in arrays
    )


def csr_entry_keys(matrix: sparse.csr_matrix) -> np.ndarray:
    """Return the sorted int64 keys ``row * ncols + col`` of the stored entries.

    The matrix must be in canonical form (``sum_duplicates`` +
    ``sort_indices``); callers that build matrices through scipy operations
    get this for free, others should call ``matrix.sum_duplicates()`` first.
    """
    matrix = matrix.tocsr()
    row_counts = np.diff(matrix.indptr)
    rows = np.repeat(np.arange(matrix.shape[0], dtype=np.int64), row_counts)
    return rows * np.int64(matrix.shape[1]) + matrix.indices.astype(np.int64)


def csr_lookup(
    matrix: sparse.csr_matrix,
    rows: np.ndarray,
    cols: np.ndarray,
    keys: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised lookup of ``matrix[rows[i], cols[i]]`` for parallel arrays.

    Returns ``(values, found)`` where ``values[i]`` is the stored value (0.0
    for absent entries) and ``found[i]`` says whether the entry is stored at
    all — callers that care about explicit zeros can distinguish them from
    structural ones.  ``keys`` may be passed to amortise
    :func:`csr_entry_keys` across many lookups on the same matrix.
    """
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    if rows.shape != cols.shape:
        raise ValueError(f"rows and cols must align, got {rows.shape} vs {cols.shape}")
    if keys is None:
        keys = csr_entry_keys(matrix)
    queries = rows * np.int64(matrix.shape[1]) + cols
    positions = np.searchsorted(keys, queries)
    positions = np.minimum(positions, max(keys.shape[0] - 1, 0))
    if keys.shape[0] == 0:
        found = np.zeros(rows.shape, dtype=bool)
    else:
        found = keys[positions] == queries
    values = np.zeros(rows.shape, dtype=matrix.dtype)
    values[found] = matrix.data[positions[found]]
    return values, found
