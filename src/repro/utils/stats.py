"""Statistics helpers for repeated experiment runs (mean ± SD reporting)."""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

__all__ = ["RunningStats", "RunSummary", "summarize_runs"]


class RunningStats:
    """Welford online mean / variance accumulator.

    The experiment runner repeats each configuration several times and
    reports ``mean ± SD`` exactly as the paper's tables do.  This class
    accumulates observations one at a time without storing them all.
    """

    def __init__(self) -> None:
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def update(self, value: float) -> None:
        """Add one observation."""
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)

    def extend(self, values: Iterable[float]) -> None:
        """Add many observations."""
        for value in values:
            self.update(float(value))

    @property
    def count(self) -> int:
        """Number of observations seen so far."""
        return self._count

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._mean if self._count else 0.0

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0.0 with fewer than two observations)."""
        if self._count < 2:
            return 0.0
        return self._m2 / (self._count - 1)

    @property
    def std(self) -> float:
        """Unbiased sample standard deviation."""
        return math.sqrt(self.variance)


@dataclass(frozen=True)
class RunSummary:
    """Mean and standard deviation of a set of repeated runs."""

    mean: float
    std: float
    count: int

    def __str__(self) -> str:
        return f"{self.mean:.4f}±{self.std:.4f}"


def summarize_runs(values: Sequence[float]) -> RunSummary:
    """Summarise repeated metric values as mean ± SD.

    Mirrors the paper's "average StrucEqu ± SD over ten experiments" rows.
    """
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return RunSummary(mean=0.0, std=0.0, count=0)
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return RunSummary(mean=float(arr.mean()), std=std, count=int(arr.size))
