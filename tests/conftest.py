"""Shared fixtures: small deterministic graphs and fast configurations."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Graph, PrivacyConfig, TrainingConfig
from repro.graph import load_dataset


@pytest.fixture(scope="session")
def triangle_graph() -> Graph:
    """A 4-node graph: a triangle (0-1-2) plus a pendant node 3 attached to 0."""
    return Graph(4, [(0, 1), (1, 2), (0, 2), (0, 3)], name="triangle-pendant")


@pytest.fixture(scope="session")
def path_graph() -> Graph:
    """A 5-node path 0-1-2-3-4."""
    return Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4)], name="path5")


@pytest.fixture(scope="session")
def star_graph() -> Graph:
    """A 6-node star with centre 0."""
    return Graph(6, [(0, i) for i in range(1, 6)], name="star6")


@pytest.fixture(scope="session")
def small_graph() -> Graph:
    """A ~60-node small-world graph used by the trainer and evaluation tests."""
    return load_dataset("smallworld", num_nodes=60, seed=11)


@pytest.fixture(scope="session")
def medium_graph() -> Graph:
    """A ~120-node scale-free graph (chameleon stand-in at reduced scale)."""
    return load_dataset("chameleon", num_nodes=120, seed=5)


@pytest.fixture()
def fast_training_config() -> TrainingConfig:
    """A training configuration small enough for second-scale tests."""
    return TrainingConfig(
        embedding_dim=8, batch_size=16, learning_rate=0.1, negative_samples=3, epochs=5
    )


@pytest.fixture()
def fast_privacy_config() -> PrivacyConfig:
    """The paper's privacy defaults (ε=3.5, δ=1e-5, σ=5, C=2)."""
    return PrivacyConfig(epsilon=3.5, delta=1e-5, noise_multiplier=5.0, clipping_threshold=2.0)


@pytest.fixture()
def rng() -> np.random.Generator:
    """A deterministic generator for test-local randomness."""
    return np.random.default_rng(1234)
