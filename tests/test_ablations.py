"""Tests for the ablation experiment module."""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentSettings
from repro.experiments.ablations import (
    ablation_gradient_normalization,
    ablation_iterate_averaging,
    ablation_negative_sampling,
)

SMOKE = ExperimentSettings.smoke_test()


class TestAblations:
    def test_iterate_averaging_rows(self):
        table = ablation_iterate_averaging(SMOKE)
        assert len(table) == len(SMOKE.datasets) * 2
        assert set(table.column("iterate_averaging")) == {True, False}
        for value in table.column("strucequ_mean"):
            assert -1.0 <= value <= 1.0

    def test_gradient_normalization_rows(self):
        table = ablation_gradient_normalization(SMOKE)
        assert len(table) == len(SMOKE.datasets) * 2
        assert set(table.column("gradient_normalization")) == {"per_row", "batch"}

    def test_negative_sampling_rows(self):
        table = ablation_negative_sampling(SMOKE)
        assert len(table) == len(SMOKE.datasets) * 2
        assert set(table.column("negative_sampling")) == {"proximity", "unigram"}

    def test_tables_render_to_text(self):
        table = ablation_iterate_averaging(SMOKE)
        text = table.to_text()
        assert "Ablation" in text
        assert "strucequ_mean" in text
