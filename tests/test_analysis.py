"""Tests for the repro.analysis invariant linter.

Every rule gets at least one fixture it must fire on and one clean
fixture it must stay silent on; suppression and baseline semantics, the
JSON schema, and the CLI exit codes are pinned as well.  Fixtures are
written to ``tmp_path`` and analysed in isolation, so these tests never
depend on the state of the real tree — except the self-run test at the
bottom, which asserts the linter is clean on ``src/`` (the acceptance
contract of the PR that introduced it).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    BaselineEntry,
    Finding,
    RULE_REGISTRY,
    all_rules,
    analyze_paths,
    get_rule,
    iter_python_files,
    zero_alloc,
)
from repro.analysis.__main__ import main as cli_main
from repro.analysis.runner import PARSE_RULE_ID, render_report
from repro.analysis.suppressions import SUPPRESSION_RULE_ID

REPO_ROOT = Path(__file__).resolve().parents[1]

RULE_IDS = ("RNG001", "PRIV001", "ALLOC001", "SHM001", "FP001")


def lint(tmp_path: Path, source: str, *, rule: str | None = None,
         filename: str = "mod.py", baseline: Baseline | None = None):
    """Write ``source`` under ``tmp_path`` and analyse that one file."""
    path = tmp_path / filename
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    rules = [get_rule(rule)] if rule is not None else None
    return analyze_paths([path], rules=rules, baseline=baseline)


def rule_ids(report) -> list[str]:
    return [finding.rule for finding in report.findings]


# --------------------------------------------------------------------- #
# framework
# --------------------------------------------------------------------- #
class TestFramework:
    def test_registry_has_the_five_shipped_rules(self):
        for rule_id in RULE_IDS:
            assert rule_id in RULE_REGISTRY

    def test_all_rules_returns_instances_sorted_by_id(self):
        rules = all_rules()
        ids = [rule.id for rule in rules]
        assert ids == sorted(ids)
        assert all(callable(rule.check) for rule in rules)

    def test_get_rule_unknown_id_raises(self):
        with pytest.raises(KeyError):
            get_rule("NOPE999")

    def test_zero_alloc_marker_preserves_function(self):
        @zero_alloc
        def f(x: int) -> int:
            """doc."""
            return x + 1

        assert f(1) == 2
        assert f.__zero_alloc__ is True
        assert f.__doc__ == "doc."

    def test_iter_python_files_skips_pycache_and_dedups(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "a.cpython-311.py").write_text("x = 1\n")
        files = iter_python_files([tmp_path, tmp_path / "a.py"])
        assert files == [tmp_path / "a.py"]

    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        report = lint(tmp_path, "def broken(:\n    pass\n")
        assert rule_ids(report) == [PARSE_RULE_ID]
        assert report.exit_code == 1


# --------------------------------------------------------------------- #
# RNG001
# --------------------------------------------------------------------- #
class TestRNG001:
    def test_fires_on_legacy_global_state_and_unseeded_rng(self, tmp_path):
        report = lint(
            tmp_path,
            """
            import numpy as np
            from numpy.random import rand

            np.random.seed(0)
            noise = np.random.normal(0.0, 1.0, size=8)
            stream = np.random.default_rng()
            other = np.random.default_rng(None)
            """,
            rule="RNG001",
        )
        assert rule_ids(report) == ["RNG001"] * 5
        messages = " | ".join(f.message for f in report.findings)
        assert "np.random.seed" in messages
        assert "unseeded default_rng" in messages

    def test_silent_on_seeded_streams(self, tmp_path):
        report = lint(
            tmp_path,
            """
            import numpy as np
            from repro.utils.rng import ensure_rng

            def draw(seed):
                rng = ensure_rng(seed)
                child = np.random.default_rng(np.random.SeedSequence(7))
                return rng.normal(size=4) + child.normal(size=4)
            """,
            rule="RNG001",
        )
        assert report.findings == []
        assert report.exit_code == 0


# --------------------------------------------------------------------- #
# PRIV001
# --------------------------------------------------------------------- #
class TestPRIV001:
    def test_fires_on_float32_in_privacy_path(self, tmp_path):
        report = lint(
            tmp_path,
            """
            import numpy as np

            def calibrate(noise):
                staged = noise.astype(np.float32)
                buf = np.zeros(4, dtype="float32")
                return staged, buf
            """,
            rule="PRIV001",
            filename="privacy/noise.py",
        )
        assert rule_ids(report) == ["PRIV001"] * 2

    def test_fires_in_perturbation_module(self, tmp_path):
        report = lint(
            tmp_path,
            "import numpy as np\nCAST = np.float32\n",
            rule="PRIV001",
            filename="embedding/perturbation.py",
        )
        assert rule_ids(report) == ["PRIV001"]

    def test_silent_outside_privacy_paths(self, tmp_path):
        report = lint(
            tmp_path,
            "import numpy as np\nCAST = np.float32\n",
            rule="PRIV001",
            filename="engine/fast.py",
        )
        assert report.findings == []

    def test_silent_on_float64_privacy_math(self, tmp_path):
        report = lint(
            tmp_path,
            """
            import numpy as np

            def calibrate(noise):
                return np.asarray(noise, dtype=np.float64)
            """,
            rule="PRIV001",
            filename="privacy/noise.py",
        )
        assert report.findings == []


# --------------------------------------------------------------------- #
# ALLOC001
# --------------------------------------------------------------------- #
class TestALLOC001:
    def test_fires_on_allocations_in_marked_function(self, tmp_path):
        report = lint(
            tmp_path,
            """
            import numpy as np
            from repro.analysis import zero_alloc

            @zero_alloc
            def step(a, b):
                fresh = np.zeros(4)
                summed = np.add(a, b)
                dup = a.copy()
                cast = b.astype(np.float64)
                return fresh, summed, dup, cast
            """,
            rule="ALLOC001",
        )
        assert rule_ids(report) == ["ALLOC001"] * 4

    def test_fires_on_marker_misuse_on_setup_phase(self, tmp_path):
        report = lint(
            tmp_path,
            """
            import numpy as np
            from repro.analysis import zero_alloc

            class W:
                @zero_alloc
                def __init__(self):
                    self.buf = np.zeros(4)
            """,
            rule="ALLOC001",
        )
        assert rule_ids(report) == ["ALLOC001"]
        assert "setup-phase" in report.findings[0].message

    def test_silent_on_out_discipline(self, tmp_path):
        report = lint(
            tmp_path,
            """
            import numpy as np
            from repro.analysis import zero_alloc

            @zero_alloc
            def step(a, b, out):
                np.add(a, b, out=out)
                np.multiply(out, 2.0, out=out)
                np.copyto(out, a)
                out += b
                return out
            """,
            rule="ALLOC001",
        )
        assert report.findings == []

    def test_unmarked_functions_are_not_checked(self, tmp_path):
        report = lint(
            tmp_path,
            "import numpy as np\n\ndef slow(a):\n    return np.zeros_like(a)\n",
            rule="ALLOC001",
        )
        assert report.findings == []


# --------------------------------------------------------------------- #
# SHM001
# --------------------------------------------------------------------- #
class TestSHM001:
    def test_fires_on_unreleased_create(self, tmp_path):
        report = lint(
            tmp_path,
            """
            from multiprocessing import shared_memory

            def make(size):
                block = shared_memory.SharedMemory(create=True, size=size)
                return block.name
            """,
            rule="SHM001",
        )
        assert rule_ids(report) == ["SHM001"]

    def test_silent_when_owning_class_registers_finalize(self, tmp_path):
        report = lint(
            tmp_path,
            """
            import weakref
            from multiprocessing.shared_memory import SharedMemory

            def _release(block):
                block.unlink()
                block.close()

            class Owner:
                def __init__(self, size):
                    self.block = SharedMemory(create=True, size=size)
                    self._finalizer = weakref.finalize(self, _release, self.block)
            """,
            rule="SHM001",
        )
        assert report.findings == []

    def test_silent_on_try_finally_release(self, tmp_path):
        report = lint(
            tmp_path,
            """
            from multiprocessing.shared_memory import SharedMemory

            def scratch(size, use):
                block = None
                try:
                    block = SharedMemory(create=True, size=size)
                    use(block)
                finally:
                    if block is not None:
                        block.unlink()
                        block.close()
            """,
            rule="SHM001",
        )
        assert report.findings == []

    def test_silent_on_factory_returning_block_with_module_finalize(self, tmp_path):
        report = lint(
            tmp_path,
            """
            import weakref
            from multiprocessing.shared_memory import SharedMemory

            def _allocate(size):
                return SharedMemory(create=True, size=size)

            def adopt(owner, blocks):
                owner._finalizer = weakref.finalize(owner, _release, blocks)

            def _release(blocks):
                for block in blocks:
                    block.unlink()
                    block.close()
            """,
            rule="SHM001",
        )
        assert report.findings == []

    def test_attach_without_create_is_ignored(self, tmp_path):
        report = lint(
            tmp_path,
            """
            from multiprocessing.shared_memory import SharedMemory

            def attach(name):
                return SharedMemory(name=name)
            """,
            rule="SHM001",
        )
        assert report.findings == []


# --------------------------------------------------------------------- #
# FP001
# --------------------------------------------------------------------- #
class TestFP001:
    def test_fires_on_insertion_order_iteration_and_unsorted_dumps(self, tmp_path):
        report = lint(
            tmp_path,
            """
            import json

            def fingerprint(payload):
                parts = [f"{k}={v}" for k, v in payload.items()]
                return json.dumps(payload) + "|".join(parts)
            """,
            rule="FP001",
        )
        assert sorted(rule_ids(report)) == ["FP001", "FP001"]
        messages = " | ".join(f.message for f in report.findings)
        assert "sort_keys" in messages
        assert ".items()" in messages

    def test_fires_in_group_key(self, tmp_path):
        report = lint(
            tmp_path,
            """
            def group_key(config):
                for key in config.keys():
                    yield key
            """,
            rule="FP001",
        )
        assert rule_ids(report) == ["FP001"]

    def test_silent_on_canonical_idioms(self, tmp_path):
        report = lint(
            tmp_path,
            """
            import json

            def fingerprint(payload):
                parts = [f"{k}={v}" for k, v in sorted(payload.items())]
                blob = json.dumps(payload, sort_keys=True)
                return blob + "|".join(parts)
            """,
            rule="FP001",
        )
        assert report.findings == []

    def test_non_fingerprint_functions_unchecked(self, tmp_path):
        report = lint(
            tmp_path,
            """
            def render(payload):
                return [v for v in payload.values()]
            """,
            rule="FP001",
        )
        assert report.findings == []


# --------------------------------------------------------------------- #
# suppressions
# --------------------------------------------------------------------- #
class TestSuppressions:
    SOURCE = """
    import numpy as np

    np.random.seed(0){comment}
    """

    def test_suppression_with_reason_silences(self, tmp_path):
        report = lint(
            tmp_path,
            self.SOURCE.format(
                comment="  # repro-lint: disable=RNG001 -- fixture exercising the seed path"
            ),
            rule="RNG001",
        )
        assert report.findings == []
        assert len(report.suppressed) == 1
        assert report.suppressed[0].finding.rule == "RNG001"
        assert "fixture" in report.suppressed[0].reason
        assert report.exit_code == 0

    def test_suppression_without_reason_is_sup001_and_does_not_suppress(self, tmp_path):
        report = lint(
            tmp_path,
            self.SOURCE.format(comment="  # repro-lint: disable=RNG001"),
            rule="RNG001",
        )
        ids = rule_ids(report)
        assert "RNG001" in ids
        assert SUPPRESSION_RULE_ID in ids
        assert report.exit_code == 1

    def test_suppression_for_other_rule_does_not_cover(self, tmp_path):
        report = lint(
            tmp_path,
            self.SOURCE.format(
                comment="  # repro-lint: disable=FP001 -- wrong rule on purpose"
            ),
            rule="RNG001",
        )
        assert rule_ids(report) == ["RNG001"]

    def test_suppression_only_covers_its_own_line(self, tmp_path):
        report = lint(
            tmp_path,
            """
            import numpy as np

            # repro-lint: disable=RNG001 -- comment on its own line
            np.random.seed(0)
            """,
            rule="RNG001",
        )
        assert rule_ids(report) == ["RNG001"]

    def test_malformed_marker_reported(self, tmp_path):
        report = lint(
            tmp_path,
            "x = 1  # repro-lint: enable=RNG001\n",
            rule="RNG001",
        )
        assert rule_ids(report) == [SUPPRESSION_RULE_ID]
        assert "malformed" in report.findings[0].message


# --------------------------------------------------------------------- #
# baseline
# --------------------------------------------------------------------- #
class TestBaseline:
    def _violation_report(self, tmp_path, baseline=None):
        return lint(
            tmp_path,
            "import numpy as np\nnp.random.seed(0)\n",
            rule="RNG001",
            baseline=baseline,
        )

    def test_baselined_finding_does_not_fail(self, tmp_path):
        first = self._violation_report(tmp_path)
        assert first.exit_code == 1
        baseline = Baseline.from_findings(first.findings, justification="grandfathered")
        second = self._violation_report(tmp_path, baseline=baseline)
        assert second.findings == []
        assert len(second.baselined) == 1
        assert second.exit_code == 0
        assert second.stale_baseline == []

    def test_baseline_matches_on_code_not_line_numbers(self, tmp_path):
        first = self._violation_report(tmp_path)
        baseline = Baseline.from_findings(first.findings, justification="grandfathered")
        # the same violation shifted down three lines still matches
        path = tmp_path / "mod.py"
        path.write_text(
            "import numpy as np\n\n\n\nnp.random.seed(0)\n", encoding="utf-8"
        )
        report = analyze_paths([path], rules=[get_rule("RNG001")], baseline=baseline)
        assert report.findings == []
        assert len(report.baselined) == 1

    def test_stale_entries_are_reported(self, tmp_path):
        stale = Baseline(
            [
                BaselineEntry(
                    rule="RNG001",
                    path="gone.py",
                    code="np.random.seed(0)",
                    justification="was fixed",
                )
            ]
        )
        (tmp_path / "clean.py").write_text("x = 1\n", encoding="utf-8")
        report = analyze_paths(
            [tmp_path / "clean.py"], rules=[get_rule("RNG001")], baseline=stale
        )
        assert report.exit_code == 0
        assert [entry.path for entry in report.stale_baseline] == ["gone.py"]
        assert "stale baseline" in report.render_text()

    def test_load_rejects_entries_without_justification(self, tmp_path):
        payload = {
            "format": "repro-analysis-baseline",
            "version": 1,
            "entries": [
                {"rule": "RNG001", "path": "a.py", "code": "np.random.seed(0)",
                 "justification": "   "}
            ],
        }
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(payload), encoding="utf-8")
        with pytest.raises(ValueError, match="justification"):
            Baseline.load(path)

    def test_load_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"format": "other", "version": 1}), encoding="utf-8")
        with pytest.raises(ValueError):
            Baseline.load(path)

    def test_save_load_roundtrip(self, tmp_path):
        baseline = Baseline(
            [
                BaselineEntry(
                    rule="FP001", path="b.py", code="json.dumps(x)",
                    justification="pre-existing",
                )
            ]
        )
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.entries == baseline.entries

    def test_checked_in_baseline_is_valid_and_empty(self):
        path = REPO_ROOT / ".repro-analysis-baseline.json"
        assert path.exists()
        assert len(Baseline.load(path)) == 0


# --------------------------------------------------------------------- #
# report formats
# --------------------------------------------------------------------- #
class TestReportFormats:
    def test_json_schema_keys(self, tmp_path):
        report = lint(
            tmp_path, "import numpy as np\nnp.random.seed(0)\n", rule="RNG001"
        )
        payload = json.loads(render_report(report, "json"))
        assert payload["format"] == "repro-analysis-report"
        assert payload["version"] == 1
        assert set(payload) == {
            "format", "version", "files_checked", "findings", "baselined",
            "suppressed", "stale_baseline", "counts",
        }
        finding = payload["findings"][0]
        assert set(finding) == {
            "rule", "path", "line", "col", "message", "hint", "code",
        }
        assert payload["counts"]["active"] == 1

    def test_text_render_has_location_rule_and_hint(self, tmp_path):
        report = lint(
            tmp_path, "import numpy as np\nnp.random.seed(0)\n", rule="RNG001"
        )
        text = render_report(report, "text")
        assert "mod.py:2:1: RNG001" in text
        assert "hint:" in text
        assert "1 finding(s)" in text

    def test_findings_sorted_by_location(self, tmp_path):
        report = lint(
            tmp_path,
            "import numpy as np\nnp.random.seed(0)\nnp.random.seed(1)\n",
            rule="RNG001",
        )
        lines = [finding.line for finding in report.findings]
        assert lines == sorted(lines)


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
class TestCLI:
    def test_subprocess_exits_nonzero_on_planted_violation(self, tmp_path):
        (tmp_path / "bad.py").write_text(
            "import numpy as np\nnp.random.seed(0)\n", encoding="utf-8"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", str(tmp_path)],
            capture_output=True,
            text=True,
            env=env,
            cwd=tmp_path,
        )
        assert proc.returncode == 1
        assert "RNG001" in proc.stdout

    def test_main_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n", encoding="utf-8")
        assert cli_main([str(tmp_path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_main_json_format(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import numpy as np\nnp.random.seed(0)\n", encoding="utf-8"
        )
        assert cli_main([str(tmp_path), "--format", "json", "--no-baseline"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["active"] == 1

    def test_main_rules_filter(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import numpy as np\nnp.random.seed(0)\n", encoding="utf-8"
        )
        assert cli_main([str(tmp_path), "--rules", "FP001"]) == 0
        capsys.readouterr()

    def test_main_list_rules(self, capsys):
        assert cli_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_IDS:
            assert rule_id in out

    def test_write_baseline_roundtrip(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import numpy as np\nnp.random.seed(0)\n", encoding="utf-8"
        )
        out_path = tmp_path / "new-baseline.json"
        assert cli_main(
            [str(tmp_path), "--no-baseline", "--write-baseline", str(out_path)]
        ) == 0
        capsys.readouterr()
        payload = json.loads(out_path.read_text(encoding="utf-8"))
        assert payload["format"] == "repro-analysis-baseline"
        assert len(payload["entries"]) == 1
        # the generated justification is a placeholder the author must edit
        assert payload["entries"][0]["justification"].startswith("TODO")
        assert len(Baseline.load(out_path)) == 1

    def test_unknown_rule_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            cli_main([str(tmp_path), "--rules", "NOPE999"])
        assert excinfo.value.code == 2


# --------------------------------------------------------------------- #
# the tree itself
# --------------------------------------------------------------------- #
class TestSelfRun:
    def test_src_is_clean(self):
        report = analyze_paths([REPO_ROOT / "src"])
        rendered = "\n".join(f.render() for f in report.findings)
        assert report.findings == [], f"linter findings on src/:\n{rendered}"

    def test_every_suppression_in_src_carries_a_reason(self):
        report = analyze_paths([REPO_ROOT / "src"])
        for item in report.suppressed:
            assert item.reason.strip()
