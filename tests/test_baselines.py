"""Tests for the four DP baseline embedders."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConfigurationError, PrivacyConfig, TrainingConfig, TrainingError
from repro.baselines import DPGGAN, DPGVAE, GAP, ProGAP, available_baselines, get_baseline

FAST = TrainingConfig(embedding_dim=8, batch_size=16, learning_rate=0.1, negative_samples=3, epochs=3)
PRIVACY = PrivacyConfig(epsilon=2.0)


class TestRegistry:
    def test_all_paper_baselines_registered(self):
        names = available_baselines()
        for expected in ("dpggan", "dpgvae", "gap", "progap"):
            assert expected in names

    def test_get_baseline_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_baseline("nonexistent")

    def test_get_baseline_forwards_configs(self):
        baseline = get_baseline("gap", training_config=FAST, privacy_config=PRIVACY, seed=0)
        assert baseline.training_config is FAST
        assert baseline.privacy_config is PRIVACY


@pytest.mark.parametrize("cls", [DPGGAN, DPGVAE, GAP, ProGAP], ids=lambda c: c.name)
class TestCommonBehaviour:
    def test_fit_returns_self_with_correct_shape(self, cls, small_graph):
        baseline = cls(training_config=FAST, privacy_config=PRIVACY, seed=0)
        fitted = baseline.fit(small_graph)
        assert fitted is baseline  # estimator protocol: fit returns self
        embeddings = fitted.embeddings_
        assert embeddings.shape == (small_graph.num_nodes, FAST.embedding_dim)
        assert np.all(np.isfinite(embeddings))

    def test_embeddings_property_after_fit(self, cls, small_graph):
        baseline = cls(training_config=FAST, privacy_config=PRIVACY, seed=0)
        baseline.fit(small_graph)
        assert baseline.embeddings.shape[0] == small_graph.num_nodes
        np.testing.assert_array_equal(baseline.embeddings, baseline.embeddings_)

    def test_embeddings_before_fit_raises(self, cls):
        baseline = cls(training_config=FAST, privacy_config=PRIVACY, seed=0)
        with pytest.raises(TrainingError):
            _ = baseline.embeddings
        with pytest.raises(TrainingError):
            _ = baseline.embeddings_

    def test_deterministic_given_seed(self, cls, small_graph):
        a = cls(training_config=FAST, privacy_config=PRIVACY, seed=7).fit_transform(small_graph)
        b = cls(training_config=FAST, privacy_config=PRIVACY, seed=7).fit_transform(small_graph)
        np.testing.assert_allclose(a, b)

    def test_different_seeds_differ(self, cls, small_graph):
        a = cls(training_config=FAST, privacy_config=PRIVACY, seed=1).fit_transform(small_graph)
        b = cls(training_config=FAST, privacy_config=PRIVACY, seed=2).fit_transform(small_graph)
        assert not np.allclose(a, b)

    def test_fit_transform_returns_matrix(self, cls, small_graph):
        baseline = cls(training_config=FAST, privacy_config=PRIVACY, seed=0)
        embeddings = baseline.fit_transform(small_graph)
        assert embeddings.shape[0] == small_graph.num_nodes

    def test_fit_rng_override(self, cls, small_graph):
        a = cls(training_config=FAST, privacy_config=PRIVACY, seed=0)
        b = cls(training_config=FAST, privacy_config=PRIVACY, seed=999)
        np.testing.assert_allclose(
            a.fit(small_graph, rng=np.random.default_rng(5)).embeddings_,
            b.fit(small_graph, rng=np.random.default_rng(5)).embeddings_,
        )


class TestAggregationPerturbationCalibration:
    def test_gap_noise_decreases_with_budget(self, small_graph):
        loose = GAP(training_config=FAST, privacy_config=PrivacyConfig(epsilon=8.0), seed=0)
        tight = GAP(training_config=FAST, privacy_config=PrivacyConfig(epsilon=0.5), seed=0)
        assert loose._calibrate_noise(loose.num_hops) < tight._calibrate_noise(tight.num_hops)

    def test_progap_noise_decreases_with_budget(self, small_graph):
        loose = ProGAP(training_config=FAST, privacy_config=PrivacyConfig(epsilon=8.0), seed=0)
        tight = ProGAP(training_config=FAST, privacy_config=PrivacyConfig(epsilon=0.5), seed=0)
        assert loose._calibrate_noise() < tight._calibrate_noise()

    def test_gap_rejects_bad_hops(self):
        with pytest.raises(ValueError):
            GAP(training_config=FAST, privacy_config=PRIVACY, num_hops=0)

    def test_progap_rejects_bad_stages(self):
        with pytest.raises(ValueError):
            ProGAP(training_config=FAST, privacy_config=PRIVACY, num_stages=0)


class TestOutputPrivatization:
    def test_output_noise_std_scales_inversely_with_epsilon(self):
        baseline = DPGVAE(training_config=FAST, privacy_config=PRIVACY, seed=0)
        assert baseline._output_noise_std(1.0, 0.5) > baseline._output_noise_std(1.0, 4.0)

    def test_output_noise_std_rejects_bad_inputs(self):
        baseline = DPGVAE(training_config=FAST, privacy_config=PRIVACY, seed=0)
        with pytest.raises(TrainingError):
            baseline._output_noise_std(0.0, 1.0)
        with pytest.raises(TrainingError):
            baseline._output_noise_std(1.0, 0.0)

    def test_privatize_output_changes_values(self, rng):
        baseline = DPGVAE(training_config=FAST, privacy_config=PRIVACY, seed=0)
        embeddings = rng.normal(size=(20, 4))
        private = baseline._privatize_output(embeddings, epsilon=1.0)
        assert private.shape == embeddings.shape
        assert not np.allclose(private, embeddings)
