"""Tests for the configuration dataclasses."""

from __future__ import annotations

import dataclasses

import pytest

from repro import ConfigurationError, PrivacyConfig, TrainingConfig


class TestPrivacyConfig:
    def test_defaults_match_paper(self):
        config = PrivacyConfig()
        assert config.epsilon == pytest.approx(3.5)
        assert config.delta == pytest.approx(1e-5)
        assert config.noise_multiplier == pytest.approx(5.0)
        assert config.clipping_threshold == pytest.approx(2.0)
        assert config.accountant == "rdp"

    def test_rejects_non_positive_epsilon(self):
        with pytest.raises(ConfigurationError):
            PrivacyConfig(epsilon=0.0)
        with pytest.raises(ConfigurationError):
            PrivacyConfig(epsilon=-1.0)

    def test_rejects_delta_outside_unit_interval(self):
        with pytest.raises(ConfigurationError):
            PrivacyConfig(delta=0.0)
        with pytest.raises(ConfigurationError):
            PrivacyConfig(delta=1.0)

    def test_rejects_bad_noise_and_clipping(self):
        with pytest.raises(ConfigurationError):
            PrivacyConfig(noise_multiplier=0.0)
        with pytest.raises(ConfigurationError):
            PrivacyConfig(clipping_threshold=-2.0)

    def test_rejects_unknown_accountant(self):
        with pytest.raises(ConfigurationError):
            PrivacyConfig(accountant="zcdp")

    def test_with_epsilon_returns_modified_copy(self):
        config = PrivacyConfig(epsilon=1.0)
        other = config.with_epsilon(2.5)
        assert other.epsilon == pytest.approx(2.5)
        assert config.epsilon == pytest.approx(1.0)
        assert other.delta == config.delta

    def test_to_dict_round_trip(self):
        config = PrivacyConfig(epsilon=2.0, delta=1e-6)
        data = config.to_dict()
        assert data["epsilon"] == pytest.approx(2.0)
        assert data["delta"] == pytest.approx(1e-6)
        assert set(data) == {
            "epsilon",
            "delta",
            "noise_multiplier",
            "clipping_threshold",
            "accountant",
        }

    def test_is_frozen(self):
        config = PrivacyConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.epsilon = 1.0  # type: ignore[misc]


class TestTrainingConfig:
    def test_defaults_match_paper(self):
        config = TrainingConfig()
        assert config.embedding_dim == 128
        assert config.batch_size == 128
        assert config.learning_rate == pytest.approx(0.1)
        assert config.negative_samples == 5
        assert config.epochs == 200

    @pytest.mark.parametrize(
        "field,value",
        [
            ("embedding_dim", 0),
            ("batch_size", -1),
            ("learning_rate", 0.0),
            ("negative_samples", 0),
            ("epochs", -5),
        ],
    )
    def test_rejects_non_positive_fields(self, field, value):
        with pytest.raises(ConfigurationError):
            TrainingConfig(**{field: value})

    def test_with_updates_replaces_fields(self):
        config = TrainingConfig(epochs=10)
        other = config.with_updates(epochs=20, batch_size=4)
        assert other.epochs == 20
        assert other.batch_size == 4
        assert config.epochs == 10

    def test_to_dict_contains_all_fields(self):
        config = TrainingConfig(seed=3, extra={"note": "x"})
        data = config.to_dict()
        assert data["seed"] == 3
        assert data["extra"] == {"note": "x"}
