"""Tests for the dataset registry and edge-list IO."""

from __future__ import annotations

import pytest

from repro import DatasetError, GraphError
from repro.graph import available_datasets, load_dataset, read_edge_list, write_edge_list
from repro.graph.datasets import DATASETS
from repro.graph.validation import validate_simple_graph


class TestDatasetRegistry:
    def test_all_paper_datasets_present(self):
        names = available_datasets()
        for expected in ("chameleon", "ppi", "power", "arxiv", "blogcatalog", "dblp"):
            assert expected in names

    def test_registry_metadata_matches_paper_sizes(self):
        assert DATASETS["chameleon"].paper_num_nodes == 2_277
        assert DATASETS["blogcatalog"].paper_num_edges == 333_983
        assert DATASETS["dblp"].paper_num_nodes == 2_244_021

    @pytest.mark.parametrize("name", ["chameleon", "ppi", "power", "arxiv", "blogcatalog", "dblp"])
    def test_each_dataset_builds_a_valid_graph(self, name):
        graph = load_dataset(name, num_nodes=60, seed=0)
        assert graph.num_nodes == 60 or name == "power"  # grid rounds to rows*cols
        assert graph.num_edges > 0
        validate_simple_graph(graph)

    def test_default_density_ordering_blogcatalog_densest(self):
        blog = load_dataset("blogcatalog", num_nodes=120, seed=0)
        power = load_dataset("power", num_nodes=120, seed=0)
        assert blog.density > power.density

    def test_deterministic_given_seed(self):
        a = load_dataset("chameleon", num_nodes=80, seed=5)
        b = load_dataset("chameleon", num_nodes=80, seed=5)
        assert a == b

    def test_scale_changes_node_count(self):
        small = load_dataset("arxiv", scale=0.25, seed=0)
        large = load_dataset("arxiv", scale=0.5, seed=0)
        assert large.num_nodes > small.num_nodes

    def test_unknown_name_raises(self):
        with pytest.raises(DatasetError):
            load_dataset("not-a-dataset")

    def test_bad_scale_raises(self):
        with pytest.raises(DatasetError):
            load_dataset("chameleon", scale=0.0)

    def test_case_insensitive_lookup(self):
        graph = load_dataset("Chameleon", num_nodes=40, seed=1)
        assert graph.name == "chameleon"


class TestEdgeListIO:
    def test_round_trip(self, tmp_path, triangle_graph):
        path = tmp_path / "graph.edgelist"
        write_edge_list(triangle_graph, path)
        loaded = read_edge_list(path, num_nodes=triangle_graph.num_nodes)
        assert loaded == triangle_graph

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\n0 1\n1 2\n# trailing\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 2

    def test_self_loops_dropped_silently(self, tmp_path):
        path = tmp_path / "loops.txt"
        path.write_text("0 0\n0 1\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 1

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_non_integer_ids_raise(self, tmp_path):
        path = tmp_path / "bad2.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_empty_file_without_num_nodes_raises(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        with pytest.raises(GraphError):
            read_edge_list(path)
