"""Tests for the skip-gram model, objective gradients, optimizer and perturbation."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConfigurationError, SkipGramModel, TrainingError
from repro.embedding.objectives import (
    StructurePreferenceObjective,
    pair_gradients,
    pair_loss,
)
from repro.embedding.optimizer import SGDOptimizer
from repro.embedding.perturbation import (
    NaivePerturbation,
    NonZeroPerturbation,
    get_perturbation,
)
from repro.graph.sampling import EdgeSubgraph
from repro.proximity import DeepWalkProximity
from repro.utils.math import log_sigmoid, sigmoid


def _numerical_center_gradient(w_in, w_out, subgraph, weight, eps=1e-6):
    """Finite-difference gradient of the pair loss w.r.t. the centre vector."""
    grad = np.zeros_like(w_in[subgraph.center])
    for i in range(grad.size):
        w_plus = w_in.copy()
        w_plus[subgraph.center, i] += eps
        w_minus = w_in.copy()
        w_minus[subgraph.center, i] -= eps
        grad[i] = (
            pair_loss(w_plus, w_out, subgraph, weight)
            - pair_loss(w_minus, w_out, subgraph, weight)
        ) / (2 * eps)
    return grad


class TestSkipGramModel:
    def test_shapes_and_init_range(self):
        model = SkipGramModel(10, 4, init_scale=0.1, seed=0)
        assert model.w_in.shape == (10, 4)
        assert model.w_out.shape == (10, 4)
        assert np.all(np.abs(model.w_in) <= 0.1)

    def test_score_matches_inner_product(self):
        model = SkipGramModel(5, 3, seed=1)
        expected = float(model.w_in[2] @ model.w_out[4])
        assert model.score(2, 4) == pytest.approx(expected)

    def test_scores_vectorised(self):
        model = SkipGramModel(6, 3, seed=2)
        centers = np.array([0, 1, 2])
        contexts = np.array([3, 4, 5])
        expected = [model.score(c, x) for c, x in zip(centers, contexts, strict=True)]
        np.testing.assert_allclose(model.scores(centers, contexts), expected)

    def test_embeddings_returns_copy(self):
        model = SkipGramModel(4, 2, seed=0)
        emb = model.embeddings()
        emb[:] = 0.0
        assert not np.allclose(model.w_in, 0.0)

    def test_copy_is_independent(self):
        model = SkipGramModel(4, 2, seed=0)
        clone = model.copy()
        np.testing.assert_allclose(clone.w_in, model.w_in)
        clone.w_in[:] = 9.0
        assert not np.allclose(model.w_in, 9.0)

    def test_apply_update_shape_check(self):
        model = SkipGramModel(4, 2, seed=0)
        with pytest.raises(ConfigurationError):
            model.apply_update(np.zeros((3, 2)), np.zeros((4, 2)))

    def test_rejects_bad_construction(self):
        with pytest.raises(ConfigurationError):
            SkipGramModel(0, 4)
        with pytest.raises(ConfigurationError):
            SkipGramModel(4, 0)
        with pytest.raises(ConfigurationError):
            SkipGramModel(4, 2, init_scale=0.0)


class TestPairGradients:
    def _setup(self, rng):
        w_in = rng.normal(0, 0.3, size=(8, 5))
        w_out = rng.normal(0, 0.3, size=(8, 5))
        sub = EdgeSubgraph(center=1, positive=2, negatives=np.array([4, 6]))
        return w_in, w_out, sub

    def test_loss_matches_equation_5(self, rng):
        w_in, w_out, sub = self._setup(rng)
        weight = 0.7
        pos = float(w_out[2] @ w_in[1])
        negs = w_out[[4, 6]] @ w_in[1]
        expected = -weight * float(log_sigmoid(pos)) - weight * float(
            np.sum(log_sigmoid(-negs))
        )
        assert pair_loss(w_in, w_out, sub, weight) == pytest.approx(expected)

    def test_center_gradient_matches_numerical(self, rng):
        w_in, w_out, sub = self._setup(rng)
        weight = 1.3
        grads = pair_gradients(w_in, w_out, sub, weight)
        numeric = _numerical_center_gradient(w_in, w_out, sub, weight)
        np.testing.assert_allclose(grads.center_gradient, numeric, atol=1e-5)

    def test_context_gradient_matches_equation_8(self, rng):
        w_in, w_out, sub = self._setup(rng)
        weight = 0.9
        grads = pair_gradients(w_in, w_out, sub, weight)
        # Eq. (8): p_ij (σ(v_n·v_i) - 1[v_n positive]) v_i for each context row.
        for row, node in enumerate(grads.context_nodes):
            score = float(w_out[node] @ w_in[1])
            indicator = 1.0 if row == 0 else 0.0
            expected = weight * (sigmoid(score) - indicator) * w_in[1]
            np.testing.assert_allclose(grads.context_gradients[row], expected, atol=1e-10)

    def test_gradient_sparsity_structure(self, rng):
        w_in, w_out, sub = self._setup(rng)
        grads = pair_gradients(w_in, w_out, sub, 1.0)
        assert grads.center == 1
        np.testing.assert_array_equal(grads.context_nodes, [2, 4, 6])
        assert grads.context_gradients.shape == (3, 5)

    def test_zero_weight_gives_zero_gradient(self, rng):
        w_in, w_out, sub = self._setup(rng)
        grads = pair_gradients(w_in, w_out, sub, 0.0)
        np.testing.assert_allclose(grads.center_gradient, 0.0)
        np.testing.assert_allclose(grads.context_gradients, 0.0)

    def test_negative_weight_rejected(self, rng):
        w_in, w_out, sub = self._setup(rng)
        with pytest.raises(TrainingError):
            pair_gradients(w_in, w_out, sub, -1.0)


class TestStructurePreferenceObjective:
    def test_edge_weight_normalised_to_unit_peak(self, small_graph):
        proximity = DeepWalkProximity(window_size=3).compute(small_graph)
        objective = StructurePreferenceObjective(proximity)
        weights = [
            objective.edge_weight(int(u), int(v)) for u, v in small_graph.edges
        ]
        assert max(weights) <= 1.0 + 1e-9
        assert min(weights) > 0

    def test_unnormalised_weights_match_raw_proximity(self, small_graph):
        proximity = DeepWalkProximity(window_size=3).compute(small_graph)
        objective = StructurePreferenceObjective(proximity, normalize_weights=False)
        u, v = (int(x) for x in small_graph.edges[0])
        assert objective.edge_weight(u, v) == pytest.approx(
            max(proximity.pair_value(u, v), objective.weight_floor)
        )

    def test_optimal_inner_product_scale_invariant(self, small_graph):
        """Theorem 3: rescaling P does not change the optimum of Eq. (10)."""
        proximity = DeepWalkProximity(window_size=3).compute(small_graph)
        from repro.proximity import ProximityMatrix

        scaled = ProximityMatrix(proximity.matrix * 7.5, name="scaled")
        u, v = (int(x) for x in small_graph.edges[0])
        assert proximity.theoretical_optimal_inner_product(u, v, 5) == pytest.approx(
            scaled.theoretical_optimal_inner_product(u, v, 5)
        )

    def test_batch_loss_requires_nonempty_batch(self, small_graph):
        proximity = DeepWalkProximity(window_size=3).compute(small_graph)
        objective = StructurePreferenceObjective(proximity)
        with pytest.raises(TrainingError):
            objective.batch_loss(np.zeros((3, 2)), np.zeros((3, 2)), [])


class TestSGDOptimizer:
    def test_descend_moves_against_gradient(self):
        opt = SGDOptimizer(learning_rate=0.5)
        params = np.array([[1.0, 1.0]])
        opt.descend(params, np.array([[2.0, -2.0]]))
        np.testing.assert_allclose(params, [[0.0, 2.0]])

    def test_descend_rows_accumulates_duplicates(self):
        opt = SGDOptimizer(learning_rate=1.0)
        params = np.zeros((3, 2))
        rows = np.array([1, 1, 2])
        grads = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        opt.descend_rows(params, rows, grads)
        np.testing.assert_allclose(params[1], [-2.0, 0.0])
        np.testing.assert_allclose(params[2], [0.0, -1.0])

    def test_decay_schedule(self):
        opt = SGDOptimizer(learning_rate=1.0, decay=1.0)
        assert opt.current_rate == pytest.approx(1.0)
        opt.step_epoch()
        assert opt.current_rate == pytest.approx(0.5)

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            SGDOptimizer(0.0)
        with pytest.raises(ConfigurationError):
            SGDOptimizer(0.1, decay=-1.0)
        opt = SGDOptimizer(0.1)
        with pytest.raises(ConfigurationError):
            opt.descend(np.zeros((2, 2)), np.zeros((3, 2)))


class TestPerturbationStrategies:
    def _example_gradients(self, rng, num_nodes=10, dim=4, count=6):
        grads = []
        for i in range(count):
            sub = EdgeSubgraph(
                center=i % num_nodes,
                positive=(i + 1) % num_nodes,
                negatives=np.array([(i + 2) % num_nodes, (i + 3) % num_nodes]),
            )
            grads.append(
                pair_gradients(
                    rng.normal(0, 0.5, (num_nodes, dim)),
                    rng.normal(0, 0.5, (num_nodes, dim)),
                    sub,
                    1.0,
                )
            )
        return grads

    def test_sensitivity_values(self):
        naive = NaivePerturbation(clipping_threshold=2.0, noise_multiplier=5.0, seed=0)
        nonzero = NonZeroPerturbation(clipping_threshold=2.0, noise_multiplier=5.0, seed=0)
        assert naive.sensitivity(batch_size=64) == pytest.approx(128.0)
        assert nonzero.sensitivity(batch_size=64) == pytest.approx(2.0)

    def test_nonzero_only_noises_touched_rows(self, rng):
        grads = self._example_gradients(rng, count=3)
        strategy = NonZeroPerturbation(2.0, 5.0, seed=1)
        result = strategy.perturb(grads, num_nodes=10, embedding_dim=4)
        touched_in = {g.center for g in grads}
        untouched_in = set(range(10)) - touched_in
        for row in untouched_in:
            np.testing.assert_allclose(result.w_in_gradient[row], 0.0)
        assert any(np.any(result.w_in_gradient[row] != 0) for row in touched_in)

    def test_naive_noises_every_row(self, rng):
        grads = self._example_gradients(rng, count=3)
        strategy = NaivePerturbation(2.0, 5.0, seed=1)
        result = strategy.perturb(grads, num_nodes=10, embedding_dim=4)
        assert np.all(np.any(result.w_in_gradient != 0, axis=1))

    def test_naive_noise_is_much_larger(self, rng):
        grads = self._example_gradients(rng, count=8)
        naive = NaivePerturbation(2.0, 5.0, seed=2).perturb(grads, 10, 4)
        nonzero = NonZeroPerturbation(2.0, 5.0, seed=2).perturb(grads, 10, 4)
        assert np.linalg.norm(naive.w_in_gradient) > 3 * np.linalg.norm(nonzero.w_in_gradient)

    def test_counts_track_batch_composition(self, rng):
        grads = self._example_gradients(rng, count=5)
        result = NonZeroPerturbation(2.0, 5.0, seed=0).perturb(grads, 10, 4)
        assert result.w_in_counts.sum() == 5
        assert result.w_out_counts.sum() == 5 * 3  # positive + 2 negatives each
        assert result.batch_size == 5

    def test_normalisation_helpers(self, rng):
        grads = self._example_gradients(rng, count=4)
        result = NonZeroPerturbation(2.0, 5.0, seed=0).perturb(grads, 10, 4)
        by_batch_in, _ = result.averaged_by_batch()
        by_row_in, _ = result.averaged_by_row_counts()
        np.testing.assert_allclose(by_batch_in * result.batch_size, result.w_in_gradient)
        # rows touched exactly once are identical to the raw sum under per-row averaging
        once = np.where(result.w_in_counts == 1)[0]
        np.testing.assert_allclose(by_row_in[once], result.w_in_gradient[once])

    def test_empty_batch_rejected(self):
        strategy = NonZeroPerturbation(2.0, 5.0, seed=0)
        with pytest.raises(TrainingError):
            strategy.perturb([], num_nodes=5, embedding_dim=3)

    def test_registry_lookup(self):
        assert isinstance(get_perturbation("naive", 2.0, 5.0), NaivePerturbation)
        assert isinstance(get_perturbation("nonzero", 2.0, 5.0), NonZeroPerturbation)
        with pytest.raises(ConfigurationError):
            get_perturbation("unknown", 2.0, 5.0)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            NonZeroPerturbation(0.0, 5.0)
        with pytest.raises(ConfigurationError):
            NaivePerturbation(2.0, 0.0)
