"""Tests for the vectorized training engine.

The headline guarantee: the engine's batched path (``batch_gradients`` +
``perturb_batch`` + ``TrainingEngine``) is *numerically equivalent* to the
seed's per-example loop (``pair_gradients`` + ``perturb``) — same weights,
same clipping, same noise draws given the same seed — to within 1e-10.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    PrivacyConfig,
    SEGEmbTrainer,
    SEPrivGEmbTrainer,
    SubgraphBatch,
    TrainingConfig,
    TrainingError,
)
from repro.embedding import SkipGramModel, SGDOptimizer, get_perturbation
from repro.embedding.objectives import StructurePreferenceObjective, pair_gradients
from repro.engine import (
    DirectSparseUpdate,
    EngineHook,
    LossLoggingHook,
    TrainingEngine,
)
from repro.graph.sampling import (
    EdgeSubgraph,
    ProximityNegativeSampler,
    SubgraphSampler,
    UnigramNegativeSampler,
    generate_disjoint_subgraph_arrays,
)
from repro.privacy.accountant import RdpAccountant
from repro.proximity import DeepWalkProximity, DegreeProximity
from repro.utils.rng import ensure_rng

ATOL = 1e-10


def _objective_and_pool(graph, k=4, seed=0):
    proximity = DeepWalkProximity(window_size=3).compute(graph)
    objective = StructurePreferenceObjective(proximity)
    sampler = UnigramNegativeSampler(graph, seed=seed)
    pool = generate_disjoint_subgraph_arrays(graph, sampler, k)
    return objective, pool


class TestSubgraphBatch:
    def test_roundtrip_through_subgraphs(self, small_graph):
        _, pool = _objective_and_pool(small_graph)
        rebuilt = SubgraphBatch.from_subgraphs(pool.to_subgraphs())
        np.testing.assert_array_equal(rebuilt.centers, pool.centers)
        np.testing.assert_array_equal(rebuilt.contexts, pool.contexts)
        assert len(pool) == small_graph.num_edges
        assert pool.num_negatives == 4

    def test_layout_matches_all_context_nodes(self, small_graph):
        _, pool = _objective_and_pool(small_graph)
        for row, sub in enumerate(pool.to_subgraphs()):
            np.testing.assert_array_equal(pool.contexts[row], sub.all_context_nodes())
            assert pool.centers[row] == sub.center
            assert pool.positives[row] == sub.positive

    def test_take_slices_all_fields(self, small_graph):
        _, pool = _objective_and_pool(small_graph)
        pool = pool.with_weights(np.arange(len(pool), dtype=float))
        indices = np.array([3, 0, 5])
        sub = pool.take(indices)
        np.testing.assert_array_equal(sub.centers, pool.centers[indices])
        np.testing.assert_array_equal(sub.contexts, pool.contexts[indices])
        np.testing.assert_array_equal(sub.weights, [3.0, 0.0, 5.0])

    def test_validation(self):
        with pytest.raises(TrainingError):  # empty batches are invalid
            SubgraphBatch(centers=np.zeros(0), contexts=np.zeros((0, 3)))
        with pytest.raises(TrainingError):
            SubgraphBatch(centers=np.zeros((2, 2)), contexts=np.zeros((2, 3)))
        with pytest.raises(TrainingError):
            SubgraphBatch(centers=np.zeros(2), contexts=np.zeros((3, 3)))
        with pytest.raises(TrainingError):  # needs positive + >= 1 negative
            SubgraphBatch(centers=np.zeros(2), contexts=np.zeros((2, 1)))
        with pytest.raises(TrainingError):  # weights shape mismatch
            SubgraphBatch(
                centers=np.zeros(2), contexts=np.zeros((2, 3)), weights=np.zeros(3)
            )
        with pytest.raises(TrainingError):
            SubgraphBatch.from_subgraphs([])

    def test_mixed_negative_counts_rejected(self):
        subs = [
            EdgeSubgraph(center=0, positive=1, negatives=np.array([2, 3])),
            EdgeSubgraph(center=1, positive=2, negatives=np.array([3])),
        ]
        with pytest.raises(TrainingError):
            SubgraphBatch.from_subgraphs(subs)


class TestBatchedSampler:
    def test_array_and_list_batches_share_the_rng_stream(self, small_graph):
        _, pool = _objective_and_pool(small_graph)
        a = SubgraphSampler(pool, batch_size=8, seed=42)
        b = SubgraphSampler(pool.to_subgraphs(), batch_size=8, seed=42)
        arrays = a.sample_batch_arrays()
        listed = b.sample_batch()
        assert len(listed) == len(arrays)
        for row, sub in enumerate(listed):
            assert sub.center == arrays.centers[row]
            np.testing.assert_array_equal(sub.all_context_nodes(), arrays.contexts[row])

    def test_weights_ride_along(self, small_graph):
        objective, pool = _objective_and_pool(small_graph)
        pool = pool.with_weights(objective.edge_weights(pool.centers, pool.positives))
        sampler = SubgraphSampler(pool, batch_size=8, seed=1)
        batch = sampler.sample_batch_arrays()
        assert batch.weights is not None
        np.testing.assert_allclose(
            batch.weights,
            objective.edge_weights(batch.centers, batch.positives),
            atol=ATOL,
        )


class TestBatchGradientEquivalence:
    def test_edge_weights_match_scalar_path(self, small_graph):
        objective, pool = _objective_and_pool(small_graph)
        vectorized = objective.edge_weights(pool.centers, pool.positives)
        scalar = [
            objective.edge_weight(int(c), int(p))
            for c, p in zip(pool.centers, pool.positives, strict=True)
        ]
        np.testing.assert_allclose(vectorized, scalar, atol=ATOL)

    def test_batch_gradients_match_pair_gradients(self, small_graph, rng):
        objective, pool = _objective_and_pool(small_graph)
        w_in = rng.normal(size=(small_graph.num_nodes, 8))
        w_out = rng.normal(size=(small_graph.num_nodes, 8))

        batch = objective.batch_gradients(w_in, w_out, pool)

        for row, sub in enumerate(pool.to_subgraphs()):
            weight = objective.edge_weight(sub.center, sub.positive)
            reference = pair_gradients(w_in, w_out, sub, weight)
            assert batch.centers[row] == reference.center
            np.testing.assert_allclose(
                batch.center_gradients[row], reference.center_gradient, atol=ATOL
            )
            np.testing.assert_array_equal(batch.context_nodes[row], reference.context_nodes)
            np.testing.assert_allclose(
                batch.context_gradients[row], reference.context_gradients, atol=ATOL
            )
            assert batch.losses[row] == pytest.approx(reference.loss, abs=ATOL)

    def test_batch_loss_matches_gradient_losses(self, small_graph, rng):
        objective, pool = _objective_and_pool(small_graph)
        w_in = rng.normal(size=(small_graph.num_nodes, 8))
        w_out = rng.normal(size=(small_graph.num_nodes, 8))
        grads = objective.batch_gradients(w_in, w_out, pool)
        assert objective.batch_loss(w_in, w_out, pool) == pytest.approx(
            grads.mean_loss, abs=ATOL
        )
        # The list-of-dataclasses view goes down the same vectorized path.
        assert objective.batch_loss(w_in, w_out, pool.to_subgraphs()) == pytest.approx(
            grads.mean_loss, abs=ATOL
        )


class TestPerturbationEquivalence:
    @pytest.mark.parametrize("strategy", ["nonzero", "naive"])
    def test_perturb_batch_matches_perturb(self, small_graph, rng, strategy):
        """Same clipping, same noise draws: the two paths agree to 1e-10."""
        objective, pool = _objective_and_pool(small_graph)
        w_in = rng.normal(size=(small_graph.num_nodes, 8))
        w_out = rng.normal(size=(small_graph.num_nodes, 8))
        batch_grads = objective.batch_gradients(w_in, w_out, pool)

        loop = get_perturbation(strategy, clipping_threshold=0.5, noise_multiplier=2.0, seed=77)
        vec = get_perturbation(strategy, clipping_threshold=0.5, noise_multiplier=2.0, seed=77)

        reference = loop.perturb(
            batch_grads.to_pair_gradients(),
            num_nodes=small_graph.num_nodes,
            embedding_dim=8,
        )
        batched = vec.perturb_batch(
            batch_grads, num_nodes=small_graph.num_nodes, embedding_dim=8
        )

        np.testing.assert_allclose(batched.w_in_gradient, reference.w_in_gradient, atol=ATOL)
        np.testing.assert_allclose(batched.w_out_gradient, reference.w_out_gradient, atol=ATOL)
        np.testing.assert_array_equal(batched.w_in_counts, reference.w_in_counts)
        np.testing.assert_array_equal(batched.w_out_counts, reference.w_out_counts)
        assert batched.batch_size == reference.batch_size
        assert batched.mean_loss == pytest.approx(reference.mean_loss, abs=ATOL)


def _legacy_nonprivate_train(graph, config, seed, epochs):
    """Replica of the seed SE-GEmb trainer: per-example loop, same RNG order."""
    rng = ensure_rng(seed)
    proximity = DegreeProximity().compute(graph)
    objective = StructurePreferenceObjective(proximity)
    model = SkipGramModel(graph.num_nodes, config.embedding_dim, seed=rng)
    optimizer = SGDOptimizer(config.learning_rate)
    negative_sampler = ProximityNegativeSampler(
        graph,
        proximity_row_sums=proximity.row_sums,
        min_positive_proximity=max(proximity.min_positive, 1e-12),
        seed=rng,
    )
    pool = generate_disjoint_subgraph_arrays(graph, negative_sampler, config.negative_samples)
    sampler = SubgraphSampler(pool, config.batch_size, seed=rng)

    for _ in range(epochs):
        batch = sampler.sample_batch()
        centers, center_grads, context_rows, context_grads = [], [], [], []
        for subgraph in batch:
            grads = objective.example_gradients(model.w_in, model.w_out, subgraph)
            centers.append(grads.center)
            center_grads.append(grads.center_gradient)
            context_rows.append(grads.context_nodes)
            context_grads.append(grads.context_gradients)
        optimizer.descend_rows(
            model.w_in, np.asarray(centers, dtype=np.int64), np.vstack(center_grads)
        )
        optimizer.descend_rows(
            model.w_out, np.concatenate(context_rows), np.vstack(context_grads)
        )
        optimizer.step_epoch()
    return model


def _legacy_private_train(graph, training, privacy, seed, epochs):
    """Replica of the seed SE-PrivGEmb trainer (Algorithm 2), same RNG order."""
    rng = ensure_rng(seed)
    proximity = DegreeProximity().compute(graph)
    objective = StructurePreferenceObjective(proximity)
    model = SkipGramModel(graph.num_nodes, training.embedding_dim, seed=rng)
    optimizer = SGDOptimizer(training.learning_rate)
    negative_sampler = ProximityNegativeSampler(
        graph,
        proximity_row_sums=proximity.row_sums,
        min_positive_proximity=max(proximity.min_positive, 1e-12),
        seed=rng,
    )
    pool = generate_disjoint_subgraph_arrays(graph, negative_sampler, training.negative_samples)
    sampler = SubgraphSampler(pool, training.batch_size, seed=rng)
    perturbation = get_perturbation(
        "nonzero",
        clipping_threshold=privacy.clipping_threshold,
        noise_multiplier=privacy.noise_multiplier,
        seed=rng,
    )
    accountant = RdpAccountant(
        noise_multiplier=privacy.noise_multiplier, sampling_rate=sampler.sampling_rate
    )

    averaged_w_in = averaged_w_out = None
    steps = 0
    for _ in range(epochs):
        if accountant.would_exceed(privacy.epsilon, privacy.delta):
            break
        batch = sampler.sample_batch()
        example_gradients = [
            objective.example_gradients(model.w_in, model.w_out, subgraph)
            for subgraph in batch
        ]
        perturbed = perturbation.perturb(
            example_gradients, num_nodes=model.num_nodes, embedding_dim=model.embedding_dim
        )
        w_in_grad, w_out_grad = perturbed.averaged_by_row_counts()
        optimizer.descend(model.w_in, w_in_grad)
        optimizer.descend(model.w_out, w_out_grad)
        accountant.step()
        optimizer.step_epoch()
        steps += 1
        if averaged_w_in is None:
            averaged_w_in = model.w_in.copy()
            averaged_w_out = model.w_out.copy()
        else:
            averaged_w_in += model.w_in
            averaged_w_out += model.w_out
    assert steps > 0
    return averaged_w_in / steps, averaged_w_out / steps


class TestEngineTrainerEquivalence:
    def test_nonprivate_trainer_matches_legacy_loop(self, small_graph, fast_training_config):
        legacy = _legacy_nonprivate_train(small_graph, fast_training_config, seed=3, epochs=5)
        result = SEGEmbTrainer(
            small_graph, DegreeProximity(), config=fast_training_config, seed=3
        ).train(epochs=5)
        np.testing.assert_allclose(result.embeddings, legacy.w_in, atol=ATOL)
        np.testing.assert_allclose(result.context_embeddings, legacy.w_out, atol=ATOL)

    def test_private_trainer_matches_legacy_loop(
        self, small_graph, fast_training_config, fast_privacy_config
    ):
        legacy_w_in, legacy_w_out = _legacy_private_train(
            small_graph, fast_training_config, fast_privacy_config, seed=9, epochs=5
        )
        result = SEPrivGEmbTrainer(
            small_graph,
            DegreeProximity(),
            training_config=fast_training_config,
            privacy_config=fast_privacy_config,
            seed=9,
        ).train(epochs=5)
        np.testing.assert_allclose(result.embeddings, legacy_w_in, atol=ATOL)
        np.testing.assert_allclose(result.context_embeddings, legacy_w_out, atol=ATOL)


class _StopAfter(EngineHook):
    def __init__(self, steps):
        self.steps = steps

    def before_step(self, engine, epoch):
        return epoch < self.steps


class TestTrainingEngine:
    def _engine(self, graph, config, hooks=()):
        objective, pool = _objective_and_pool(graph, k=config.negative_samples)
        pool = pool.with_weights(objective.edge_weights(pool.centers, pool.positives))
        rng = ensure_rng(0)
        model = SkipGramModel(graph.num_nodes, config.embedding_dim, seed=rng)
        return TrainingEngine(
            model=model,
            optimizer=SGDOptimizer(config.learning_rate),
            objective=objective,
            sampler=SubgraphSampler(pool, config.batch_size, seed=rng),
            update_rule=DirectSparseUpdate(),
            hooks=hooks,
        )

    def test_run_records_losses_and_copies_weights(self, small_graph, fast_training_config):
        engine = self._engine(small_graph, fast_training_config, hooks=(LossLoggingHook(),))
        result = engine.run(4)
        assert result.epochs_run == 4
        assert len(result.losses) == 4
        assert not result.stopped_early
        assert np.all(np.isfinite(result.embeddings))
        # Published matrices are copies, not views of the live model.
        result.embeddings[:] = 0.0
        assert not np.allclose(engine.model.w_in, 0.0)

    def test_hook_stops_training(self, small_graph, fast_training_config):
        engine = self._engine(small_graph, fast_training_config, hooks=(_StopAfter(2),))
        result = engine.run(10)
        assert result.epochs_run == 2
        assert result.stopped_early

    def test_rejects_nonpositive_epochs(self, small_graph, fast_training_config):
        engine = self._engine(small_graph, fast_training_config)
        with pytest.raises(TrainingError):
            engine.run(0)
