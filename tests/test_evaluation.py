"""Tests for the metrics, link-prediction splits and the two downstream tasks."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import EvaluationError, Graph
from repro.evaluation import (
    link_prediction_auc,
    make_link_prediction_split,
    pearson_correlation,
    roc_auc_score,
    score_edges,
    structural_equivalence_score,
)


class TestPearson:
    def test_perfect_correlation(self):
        x = np.arange(10, dtype=float)
        assert pearson_correlation(x, 2 * x + 3) == pytest.approx(1.0)
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_matches_numpy(self, rng):
        x = rng.normal(size=100)
        y = 0.3 * x + rng.normal(size=100)
        assert pearson_correlation(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1], abs=1e-10)

    def test_constant_vector_returns_zero(self):
        assert pearson_correlation(np.ones(5), np.arange(5.0)) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(EvaluationError):
            pearson_correlation(np.ones(3), np.ones(4))

    def test_too_short_raises(self):
        with pytest.raises(EvaluationError):
            pearson_correlation(np.ones(1), np.ones(1))


class TestRocAuc:
    def test_perfect_separation(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc_score(labels, scores) == pytest.approx(1.0)

    def test_inverted_scores_give_zero(self):
        labels = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_auc_score(labels, scores) == pytest.approx(0.0)

    def test_random_scores_near_half(self, rng):
        labels = rng.integers(0, 2, size=2000)
        while labels.sum() in (0, len(labels)):
            labels = rng.integers(0, 2, size=2000)
        scores = rng.normal(size=2000)
        assert roc_auc_score(labels, scores) == pytest.approx(0.5, abs=0.05)

    def test_ties_handled_via_average_ranks(self):
        labels = np.array([0, 1, 0, 1])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        assert roc_auc_score(labels, scores) == pytest.approx(0.5)

    def test_single_class_raises(self):
        with pytest.raises(EvaluationError):
            roc_auc_score(np.ones(4), np.arange(4.0))


class TestLinkPredictionSplit:
    def test_split_sizes(self, medium_graph):
        split = make_link_prediction_split(medium_graph, test_fraction=0.1, seed=0)
        expected_test = max(1, int(round(0.1 * medium_graph.num_edges)))
        assert len(split.test_positive) == expected_test
        assert len(split.test_negative) == expected_test
        assert len(split.train_positive) == medium_graph.num_edges - expected_test
        assert len(split.train_negative) == len(split.train_positive)

    def test_training_graph_excludes_test_edges(self, medium_graph):
        split = make_link_prediction_split(medium_graph, seed=1)
        for u, v in split.test_positive:
            assert not split.training_graph.has_edge(int(u), int(v))
        assert split.training_graph.num_edges == len(split.train_positive)

    def test_negatives_are_non_edges(self, medium_graph):
        split = make_link_prediction_split(medium_graph, seed=2)
        for u, v in np.vstack([split.test_negative, split.train_negative]):
            assert not medium_graph.has_edge(int(u), int(v))

    def test_labels_and_pairs_layout(self, medium_graph):
        split = make_link_prediction_split(medium_graph, seed=3)
        labels, pairs = split.test_labels_and_pairs()
        assert labels.sum() == len(split.test_positive)
        assert len(labels) == len(pairs)
        np.testing.assert_array_equal(pairs[: len(split.test_positive)], split.test_positive)

    def test_deterministic_given_seed(self, medium_graph):
        a = make_link_prediction_split(medium_graph, seed=5)
        b = make_link_prediction_split(medium_graph, seed=5)
        np.testing.assert_array_equal(a.test_positive, b.test_positive)

    def test_invalid_fraction_or_tiny_graph(self, medium_graph):
        with pytest.raises(EvaluationError):
            make_link_prediction_split(medium_graph, test_fraction=0.0)
        tiny = Graph(4, [(0, 1), (1, 2)])
        with pytest.raises(EvaluationError):
            make_link_prediction_split(tiny)

    def test_untrained_endpoint_count_exposed_and_warned(self):
        # a 20-node ring plus a pendant node whose only edge, once held
        # out as a test positive, leaves the pendant untrained
        ring = [(i, (i + 1) % 20) for i in range(20)]
        lollipop = Graph(21, [*ring, (0, 20)], name="lollipop")
        saw_isolating, saw_clean = None, None
        for seed in range(400):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                split = make_link_prediction_split(lollipop, seed=seed)
            degree_of_pendant = split.training_graph.degree(20)
            if degree_of_pendant == 0 and saw_isolating is None:
                saw_isolating = (split, caught)
            elif degree_of_pendant > 0 and saw_clean is None:
                saw_clean = (split, caught)
            if saw_isolating and saw_clean:
                break
        assert saw_isolating is not None, "no seed isolated the pendant node"
        assert saw_clean is not None
        split, caught = saw_isolating
        assert split.untrained_test_endpoints >= 1
        assert any(
            issubclass(w.category, RuntimeWarning) and "no training edges" in str(w.message)
            for w in caught
        )
        clean_split, clean_caught = saw_clean
        assert clean_split.untrained_test_endpoints == 0
        assert not any("no training edges" in str(w.message) for w in clean_caught)

    def test_untrained_endpoints_default_zero_on_robust_graph(self, medium_graph):
        split = make_link_prediction_split(medium_graph, seed=0)
        assert split.untrained_test_endpoints >= 0


class TestScoreEdges:
    def test_dot_scorer(self):
        emb = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        scores = score_edges(emb, np.array([[0, 2], [0, 1]]), scorer="dot")
        np.testing.assert_allclose(scores, [1.0, 0.0])

    def test_cosine_scorer_bounded(self, rng):
        emb = rng.normal(size=(10, 4))
        pairs = np.array([[i, (i + 1) % 10] for i in range(10)])
        scores = score_edges(emb, pairs, scorer="cosine")
        assert np.all(np.abs(scores) <= 1.0 + 1e-9)

    def test_negative_euclidean_ranks_close_pairs_higher(self):
        emb = np.array([[0.0, 0.0], [0.1, 0.0], [5.0, 5.0]])
        scores = score_edges(emb, np.array([[0, 1], [0, 2]]), scorer="negative_euclidean")
        assert scores[0] > scores[1]

    def test_invalid_inputs(self, rng):
        emb = rng.normal(size=(5, 3))
        with pytest.raises(EvaluationError):
            score_edges(emb, np.zeros((3, 3), dtype=int))
        with pytest.raises(EvaluationError):
            score_edges(emb, np.array([[0, 1]]), scorer="manhattan")


class TestStructuralEquivalence:
    def test_adjacency_rows_give_high_score(self, medium_graph):
        """Embedding each node by its own adjacency row must recover structure well."""
        adjacency = np.asarray(medium_graph.adjacency_matrix(dense=True))
        score = structural_equivalence_score(medium_graph, adjacency)
        assert score > 0.9

    def test_random_embeddings_score_near_zero(self, medium_graph, rng):
        random_embeddings = rng.normal(size=(medium_graph.num_nodes, 16))
        score = structural_equivalence_score(medium_graph, random_embeddings)
        assert abs(score) < 0.25

    def test_sampled_pairs_close_to_exhaustive(self, medium_graph, rng):
        embeddings = rng.normal(size=(medium_graph.num_nodes, 8)) + np.asarray(
            medium_graph.adjacency_matrix(dense=True)
        )[:, :8]
        exact = structural_equivalence_score(medium_graph, embeddings, max_pairs=None)
        sampled = structural_equivalence_score(medium_graph, embeddings, max_pairs=3000, seed=0)
        assert abs(exact - sampled) < 0.1

    def test_shape_mismatch_raises(self, medium_graph, rng):
        with pytest.raises(EvaluationError):
            structural_equivalence_score(medium_graph, rng.normal(size=(3, 4)))

    def test_link_prediction_auc_with_informative_embeddings(self, medium_graph):
        """Adjacency-row embeddings should beat random guessing on held-out links."""
        split = make_link_prediction_split(medium_graph, seed=0)
        adjacency = np.asarray(split.training_graph.adjacency_matrix(dense=True))
        auc = link_prediction_auc(adjacency, split, scorer="dot")
        assert auc > 0.6

    def test_link_prediction_auc_with_random_embeddings(self, medium_graph, rng):
        split = make_link_prediction_split(medium_graph, seed=0)
        auc = link_prediction_auc(rng.normal(size=(medium_graph.num_nodes, 8)), split)
        assert 0.3 < auc < 0.7
