"""Tests for the experiment harness: settings, result tables, runner, sweeps."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConfigurationError, PrivacyConfig, TrainingConfig
from repro.experiments import (
    ExperimentSettings,
    PAPER_EPSILONS,
    PAPER_METHODS,
    ResultTable,
    embed_with_method,
    evaluate_link_prediction,
    evaluate_structural_equivalence,
    figure_link_prediction,
    figure_structural_equivalence,
    table_batch_size,
    table_perturbation,
)
from repro.experiments.runner import is_private_method
from repro.graph import load_dataset
from repro.models import available_methods

FAST_TRAINING = TrainingConfig(
    embedding_dim=8, batch_size=24, learning_rate=0.1, negative_samples=3, epochs=6
)
FAST_PRIVACY = PrivacyConfig(epsilon=2.0)
SMOKE = ExperimentSettings.smoke_test()


class TestExperimentSettings:
    def test_paper_constants(self):
        assert PAPER_EPSILONS == (0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5)
        assert len(PAPER_METHODS) == 8

    def test_defaults_are_valid(self):
        settings = ExperimentSettings()
        assert settings.repeats >= 1
        assert all(eps > 0 for eps in settings.epsilons)

    def test_paper_scale_matches_reported_hyperparameters(self):
        settings = ExperimentSettings.paper_scale()
        assert settings.training.embedding_dim == 128
        assert settings.training.batch_size == 128
        assert settings.repeats == 10
        assert len(settings.datasets) == 6

    def test_with_updates(self):
        settings = ExperimentSettings().with_updates(repeats=5)
        assert settings.repeats == 5

    def test_invalid_settings_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentSettings(datasets=())
        with pytest.raises(ConfigurationError):
            ExperimentSettings(repeats=0)
        with pytest.raises(ConfigurationError):
            ExperimentSettings(epsilons=(0.0,))


class TestResultTable:
    def test_add_and_render(self):
        table = ResultTable("demo")
        table.add_row({"dataset": "x", "value": 0.5})
        table.add_row({"dataset": "y", "value": 0.25, "extra": 1})
        text = table.to_text()
        assert "demo" in text
        assert "0.5000" in text
        assert len(table) == 2
        assert table.columns() == ["dataset", "value", "extra"]

    def test_filter_and_best_row(self):
        table = ResultTable("demo")
        table.add_row({"method": "a", "score": 0.3})
        table.add_row({"method": "b", "score": 0.7})
        assert len(table.filter(method="a")) == 1
        assert table.best_row("score")["method"] == "b"
        assert table.best_row("score", maximize=False)["method"] == "a"

    def test_best_row_missing_metric_raises(self):
        table = ResultTable("demo", rows=[{"a": 1}])
        with pytest.raises(KeyError):
            table.best_row("missing")

    def test_column_extraction(self):
        table = ResultTable("demo", rows=[{"a": 1, "b": 2}, {"a": 3}])
        assert table.column("a") == [1, 3]
        assert table.column("b") == [2, None]

    def test_empty_table_renders(self):
        assert "(empty)" in ResultTable("empty").to_text()

    def test_rows_of_empty_dicts_render_as_empty(self):
        # rows exist but no columns were ever seen
        table = ResultTable("demo", rows=[{}, {}])
        assert len(table) == 2
        assert "(empty)" in table.to_text()

    def test_ragged_rows_render_with_blanks(self):
        table = ResultTable("demo")
        table.add_row({"a": 1.0})
        table.add_row({"b": "x"})
        text = table.to_text()
        lines = text.splitlines()
        assert lines[1].split() == ["a", "b"]
        # each body line has both cells (one blank-padded)
        assert "1.0000" in text and "x" in text

    def test_filter_with_float_criteria(self):
        table = ResultTable("demo")
        table.add_row({"epsilon": 0.5, "score": 0.1})
        table.add_row({"epsilon": 3.5, "score": 0.9})
        table.add_row({"epsilon": 3.5, "score": 0.7})
        assert len(table.filter(epsilon=3.5)) == 2
        assert len(table.filter(epsilon=0.5, score=0.1)) == 1
        assert len(table.filter(epsilon=1.0)) == 0

    def test_filter_missing_column_matches_nothing(self):
        table = ResultTable("demo", rows=[{"a": 1}])
        assert len(table.filter(b=1)) == 0

    def test_filter_preserves_title_and_copies_rows(self):
        table = ResultTable("demo", rows=[{"a": 1}])
        filtered = table.filter(a=1)
        assert filtered.title == "demo"
        filtered.rows[0]["a"] = 2
        assert table.rows[0]["a"] == 1

    def test_best_row_with_float_metric_and_ties(self):
        table = ResultTable("demo")
        table.add_row({"m": "first", "score": 0.7})
        table.add_row({"m": "second", "score": 0.7})
        table.add_row({"m": "third", "score": 0.3})
        assert table.best_row("score")["m"] == "first"  # stable for ties
        assert table.best_row("score", maximize=False)["m"] == "third"

    def test_best_row_ignores_rows_missing_the_metric(self):
        table = ResultTable("demo", rows=[{"other": 1}, {"score": 0.2}])
        assert table.best_row("score")["score"] == 0.2

    def test_best_row_on_empty_table_raises(self):
        with pytest.raises(KeyError):
            ResultTable("demo").best_row("score")

    def test_to_text_float_format_override(self):
        table = ResultTable("demo", rows=[{"v": 0.123456}])
        assert "0.12" in table.to_text(float_format="{:.2f}")
        assert "0.123456" not in table.to_text(float_format="{:.2f}")


class TestRepeatSeeding:
    """Pin the SeedSequence-based repeat seeding of the evaluation helpers."""

    @pytest.fixture(scope="class")
    def graph(self):
        return load_dataset("smallworld", num_nodes=60, seed=2)

    def _capture_strucequ(self, monkeypatch, graph, seed, repeats):
        from repro.experiments import runner as runner_module

        train_draws, eval_draws = [], []

        def fake_embed(method, graph, training, privacy, seed=None, **kwargs):
            train_draws.append(int(seed.integers(0, 2**62)))
            return np.zeros((graph.num_nodes, 4))

        def fake_score(graph, embeddings, seed=None):
            eval_draws.append(int(seed.integers(0, 2**62)))
            return 0.5

        monkeypatch.setattr(runner_module, "embed_with_method", fake_embed)
        monkeypatch.setattr(runner_module, "structural_equivalence_score", fake_score)
        evaluate_structural_equivalence(
            "gap", graph, FAST_TRAINING, FAST_PRIVACY, repeats=repeats, seed=seed
        )
        return train_draws, eval_draws

    def test_adjacent_base_seeds_do_not_collide(self, monkeypatch, graph):
        # the old seed+repeat convention made (seed=0, repeat=1) identical
        # to (seed=1, repeat=0); spawned streams must all be distinct
        draws_0, _ = self._capture_strucequ(monkeypatch, graph, seed=0, repeats=3)
        draws_1, _ = self._capture_strucequ(monkeypatch, graph, seed=1, repeats=3)
        assert len(set(draws_0) | set(draws_1)) == 6

    def test_evaluation_sample_fixed_across_repeats(self, monkeypatch, graph):
        _, eval_draws = self._capture_strucequ(monkeypatch, graph, seed=7, repeats=4)
        assert len(eval_draws) == 4
        assert len(set(eval_draws)) == 1  # same stream, fresh generator each time

    def test_repeats_within_one_cell_are_distinct(self, monkeypatch, graph):
        draws, _ = self._capture_strucequ(monkeypatch, graph, seed=0, repeats=4)
        assert len(set(draws)) == 4

    def test_seeding_is_deterministic(self, monkeypatch, graph):
        a = self._capture_strucequ(monkeypatch, graph, seed=5, repeats=2)
        b = self._capture_strucequ(monkeypatch, graph, seed=5, repeats=2)
        assert a == b

    def test_accepts_seed_sequence(self, graph):
        seq = np.random.SeedSequence(42)
        mean_a, _ = evaluate_structural_equivalence(
            "se_privgemb_deg", graph, FAST_TRAINING, FAST_PRIVACY, repeats=1,
            seed=np.random.SeedSequence(42),
        )
        mean_b, _ = evaluate_structural_equivalence(
            "se_privgemb_deg", graph, FAST_TRAINING, FAST_PRIVACY, repeats=1, seed=seq
        )
        assert mean_a == mean_b

    def test_link_prediction_split_and_training_streams_differ(self, monkeypatch, graph):
        from repro.experiments import runner as runner_module

        split_draws, embed_draws = [], []
        real_split = runner_module.make_link_prediction_split

        def fake_split(graph, seed=None):
            split_draws.append(int(seed.integers(0, 2**62)))
            return real_split(graph, seed=seed)

        def fake_embed(method, graph, training, privacy, seed=None, **kwargs):
            embed_draws.append(int(seed.integers(0, 2**62)))
            return np.zeros((graph.num_nodes, 4))

        monkeypatch.setattr(runner_module, "make_link_prediction_split", fake_split)
        monkeypatch.setattr(runner_module, "embed_with_method", fake_embed)
        evaluate_link_prediction(
            "gap", graph, FAST_TRAINING, FAST_PRIVACY, repeats=2, seed=0
        )
        # the old convention fed the identical integer seed to both the
        # split and the trainer; the spawned streams must all differ
        assert len(set(split_draws) | set(embed_draws)) == 4


class TestRunner:
    @pytest.fixture(scope="class")
    def graph(self):
        return load_dataset("smallworld", num_nodes=60, seed=2)

    def test_method_name_registry(self):
        assert set(PAPER_METHODS) <= set(available_methods())
        assert is_private_method("se_privgemb_dw")
        assert not is_private_method("se_gemb_deg")

    @pytest.mark.parametrize("method", PAPER_METHODS)
    def test_every_method_produces_embeddings(self, method, graph):
        embeddings = embed_with_method(method, graph, FAST_TRAINING, FAST_PRIVACY, seed=0)
        assert embeddings.shape == (graph.num_nodes, FAST_TRAINING.embedding_dim)
        assert np.all(np.isfinite(embeddings))

    def test_unknown_method_raises(self, graph):
        with pytest.raises(ConfigurationError):
            embed_with_method("unknown", graph, FAST_TRAINING, FAST_PRIVACY)

    def test_evaluate_structural_equivalence_returns_mean_std(self, graph):
        mean, std = evaluate_structural_equivalence(
            "se_privgemb_deg", graph, FAST_TRAINING, FAST_PRIVACY, repeats=2, seed=0
        )
        assert -1.0 <= mean <= 1.0
        assert std >= 0.0

    def test_evaluate_link_prediction_returns_valid_auc(self, graph):
        mean, std = evaluate_link_prediction(
            "se_gemb_deg", graph, FAST_TRAINING, FAST_PRIVACY, repeats=2, seed=0
        )
        assert 0.0 <= mean <= 1.0
        assert std >= 0.0


class TestSweeps:
    def test_table_batch_size_rows(self):
        table = table_batch_size(SMOKE, batch_sizes=(16, 32))
        # datasets × variants × values
        assert len(table) == len(SMOKE.datasets) * 2 * 2
        assert set(table.column("batch_size")) == {16, 32}
        for value in table.column("strucequ_mean"):
            assert -1.0 <= value <= 1.0

    def test_table_perturbation_has_both_strategies(self):
        table = table_perturbation(SMOKE, epsilons=(3.5,))
        assert len(table) == len(SMOKE.datasets) * 2
        for row in table.rows:
            assert "naive_mean" in row and "nonzero_mean" in row

    def test_figure_structural_equivalence_series(self):
        table = figure_structural_equivalence(
            SMOKE, methods=("se_privgemb_deg", "se_gemb_deg", "gap")
        )
        assert len(table) == len(SMOKE.datasets) * 3 * len(SMOKE.epsilons)
        non_private = table.filter(method="se_gemb_deg")
        values = non_private.column("strucequ_mean")
        # non-private methods do not depend on ε: single value replicated
        assert len(set(round(v, 12) for v in values)) == 1

    def test_figure_link_prediction_series(self):
        table = figure_link_prediction(SMOKE, methods=("se_privgemb_deg", "dpgvae"))
        assert len(table) == len(SMOKE.datasets) * 2 * len(SMOKE.epsilons)
        for value in table.column("auc_mean"):
            assert 0.0 <= value <= 1.0
