"""Tests for the zero-allocation training fast path.

Covers the :class:`~repro.engine.StepWorkspace` machinery (in-place
gradients, compact perturbation, segment reduction), the ``compute_dtype``
knob (float32 ↔ float64 parity at tolerance across every registered
method), the alias negative sampler, the partial Fisher–Yates batch
sampler, the per-phase :class:`~repro.engine.StepProfiler`, the SGD dtype
guard, and the tracemalloc allocation pins.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ConfigurationError, PrivacyConfig, TrainingConfig
from repro.embedding import SGDOptimizer, SkipGramModel, get_perturbation
from repro.embedding.objectives import StructurePreferenceObjective
from repro.embedding.private_trainer import SEPrivGEmbTrainer
from repro.embedding.trainer import SEGEmbTrainer
from repro.engine import (
    DirectSparseUpdate,
    PerturbedUpdate,
    StepProfiler,
    StepWorkspace,
    TrainingEngine,
    WorkspacePerturbedGradients,
    resolve_compute_dtype,
)
from repro.engine.workspace import _SegmentScratch
from repro.exceptions import GraphError, TrainingError
from repro.graph import load_dataset
from repro.graph.sampling import (
    ProximityNegativeSampler,
    SubgraphSampler,
    UnigramNegativeSampler,
    generate_disjoint_subgraph_arrays,
)
from repro.models import Embedder, available_methods, get_method
from repro.proximity import DegreeProximity

TRAINING = TrainingConfig(
    embedding_dim=12, batch_size=24, learning_rate=0.1, negative_samples=4,
    epochs=25, seed=0,
)
PRIVACY = PrivacyConfig(
    epsilon=3.5, delta=1e-5, noise_multiplier=5.0, clipping_threshold=2.0
)


@pytest.fixture(scope="module")
def graph():
    return load_dataset("smallworld", num_nodes=80, seed=7)


def _fast_setup(graph, *, dtype="float64", private=False, seed=0):
    """A trainer's engine stack on the fast path, already set up."""
    if private:
        trainer = SEPrivGEmbTrainer(
            proximity=DegreeProximity(), training_config=TRAINING,
            privacy_config=PRIVACY, seed=seed, fast_path=True, compute_dtype=dtype,
        )
    else:
        trainer = SEGEmbTrainer(
            proximity=DegreeProximity(), config=TRAINING, seed=seed,
            fast_path=True, compute_dtype=dtype,
        )
    trainer._setup(graph, np.random.default_rng(seed))
    return trainer


# --------------------------------------------------------------------- #
# workspace construction and validation
# --------------------------------------------------------------------- #
class TestStepWorkspace:
    def test_geometry_and_buffer_identity(self):
        ws = StepWorkspace(
            batch_size=8, num_negatives=3, embedding_dim=5, num_nodes=30,
            dtype="float32",
        )
        assert ws.batch.centers is ws.centers
        assert ws.batch.weights is ws.weights
        assert ws.gradients.context_gradients is ws.context_gradients
        assert ws.contexts.shape == (8, 4)
        assert ws.context_vecs.shape == (8, 4, 5)
        assert ws.dtype == np.dtype(np.float32)
        assert ws.weights.dtype == np.dtype(np.float32)
        # DP noise buffers stay float64 regardless of the compute dtype
        assert ws.context_scratch.noise.dtype == np.dtype(np.float64)

    def test_rejects_bad_dtype_and_geometry(self):
        with pytest.raises(ConfigurationError, match="compute_dtype"):
            StepWorkspace(batch_size=4, num_negatives=2, embedding_dim=3,
                          num_nodes=10, dtype="float16")
        with pytest.raises(ConfigurationError, match="batch_size"):
            StepWorkspace(batch_size=0, num_negatives=2, embedding_dim=3, num_nodes=10)
        with pytest.raises(ConfigurationError, match="num_negatives"):
            StepWorkspace(batch_size=4, num_negatives=0, embedding_dim=3, num_nodes=10)

    def test_matches_and_model_validation(self):
        ws = StepWorkspace(batch_size=4, num_negatives=2, embedding_dim=3, num_nodes=10)
        assert ws.matches(batch_size=4, num_negatives=2, embedding_dim=3,
                          num_nodes=10, dtype="float64")
        assert not ws.matches(batch_size=4, num_negatives=2, embedding_dim=3,
                              num_nodes=10, dtype="float32")
        assert not ws.matches(batch_size=5, num_negatives=2, embedding_dim=3,
                              num_nodes=10, dtype="float64")
        model = SkipGramModel(10, 3, seed=0, dtype="float32")
        with pytest.raises(ConfigurationError, match="float32"):
            ws.validate_model(model)
        ws.validate_model(SkipGramModel(10, 3, seed=0))

    def test_resolve_compute_dtype(self):
        assert resolve_compute_dtype("float32") == np.dtype(np.float32)
        assert resolve_compute_dtype(np.float64) == np.dtype(np.float64)
        with pytest.raises(ConfigurationError, match="float16"):
            resolve_compute_dtype("float16")
        with pytest.raises(ConfigurationError):
            resolve_compute_dtype("int64")
        with pytest.raises(ConfigurationError):
            # np.dtype(None) would silently mean float64 — must be rejected
            resolve_compute_dtype(None)


# --------------------------------------------------------------------- #
# segment reduction (the compact scatter core)
# --------------------------------------------------------------------- #
class TestSegmentScratch:
    @given(st.integers(0, 2**31 - 1), st.integers(2, 64), st.integers(1, 9))
    @settings(max_examples=40, deadline=None)
    def test_reduce_matches_unique_bincount(self, seed, slots, dim):
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, max(2, slots // 2 * 3), size=slots)
        values = rng.standard_normal((slots, dim))
        scratch = _SegmentScratch(slots, dim, np.dtype(np.float64))
        unique = scratch.reduce(rows, values)
        expected_rows, inverse = np.unique(rows, return_inverse=True)
        expected_sums = np.zeros((expected_rows.size, dim))
        np.add.at(expected_sums, inverse, values)
        expected_counts = np.bincount(inverse, minlength=expected_rows.size)
        assert unique == expected_rows.size
        np.testing.assert_array_equal(scratch.unique_rows[:unique], expected_rows)
        np.testing.assert_allclose(scratch.sums[:unique], expected_sums, rtol=1e-12, atol=1e-12)
        np.testing.assert_array_equal(scratch.counts[:unique], expected_counts)

    def test_all_duplicates(self):
        scratch = _SegmentScratch(6, 2, np.dtype(np.float64))
        unique = scratch.reduce(np.zeros(6, dtype=np.int64), np.ones((6, 2)))
        assert unique == 1
        np.testing.assert_allclose(scratch.sums[0], [6.0, 6.0])
        assert scratch.counts[0] == 6.0


# --------------------------------------------------------------------- #
# workspace gradient / perturb equivalence with the default path
# --------------------------------------------------------------------- #
class TestWorkspaceEquivalence:
    def test_gradients_match_default_path(self, graph):
        trainer = _fast_setup(graph)
        ws = trainer.engine.workspace
        batch = trainer._sampler.sample_batch_arrays(workspace=ws)
        model = trainer.model
        fast = trainer.objective.batch_gradients(
            model.w_in, model.w_out, batch, workspace=ws
        )
        # the same indices through the allocating default path
        default = trainer.objective.batch_gradients(
            model.w_in, model.w_out,
            trainer._subgraph_pool.take(trainer._sampler._fy_indices),
        )
        np.testing.assert_allclose(fast.center_gradients, default.center_gradients,
                                   rtol=1e-12, atol=1e-14)
        np.testing.assert_allclose(fast.context_gradients, default.context_gradients,
                                   rtol=1e-12, atol=1e-14)
        np.testing.assert_allclose(fast.losses, default.losses, rtol=1e-12, atol=1e-14)
        np.testing.assert_array_equal(fast.centers, default.centers)
        np.testing.assert_array_equal(fast.context_nodes, default.context_nodes)

    def test_workspace_requires_bound_weights(self, graph):
        trainer = _fast_setup(graph)
        ws = trainer.engine.workspace
        model = trainer.model
        pool = trainer._subgraph_pool
        weightless = pool.take(np.arange(ws.batch_size)).with_weights(
            np.ones(ws.batch_size)
        )
        object.__setattr__(weightless, "weights", None)
        with pytest.raises(TrainingError, match="pre-bound"):
            trainer.objective.batch_gradients(
                model.w_in, model.w_out, weightless, workspace=ws
            )

    def test_perturb_batch_workspace_matches_default(self, graph):
        trainer = _fast_setup(graph, private=True)
        ws = trainer.engine.workspace
        model = trainer.model
        batch = trainer._sampler.sample_batch_arrays(workspace=ws)
        gradients = trainer.objective.batch_gradients(
            model.w_in, model.w_out, batch, workspace=ws
        )
        # two strategies with the same seed: the noise streams are pinned
        fast_strategy = get_perturbation("nonzero", 2.0, 5.0, seed=123)
        default_strategy = get_perturbation("nonzero", 2.0, 5.0, seed=123)
        # the default path must not see the in-place clipped buffers
        default_gradients = type(gradients)(
            centers=gradients.centers.copy(),
            center_gradients=gradients.center_gradients.copy(),
            context_nodes=gradients.context_nodes.copy(),
            context_gradients=gradients.context_gradients.copy(),
            losses=gradients.losses.copy(),
        )
        default = default_strategy.perturb_batch(
            default_gradients, num_nodes=graph.num_nodes,
            embedding_dim=model.embedding_dim,
        )
        fast = fast_strategy.perturb_batch(
            gradients, num_nodes=graph.num_nodes,
            embedding_dim=model.embedding_dim, workspace=ws,
        )
        assert isinstance(fast, WorkspacePerturbedGradients)
        np.testing.assert_array_equal(fast.w_in_rows, default.w_in_rows)
        np.testing.assert_array_equal(fast.w_out_rows, default.w_out_rows)
        np.testing.assert_array_equal(fast.w_in_counts, default.w_in_row_counts)
        np.testing.assert_array_equal(fast.w_out_counts, default.w_out_row_counts)
        # same noise draws land on the same touched rows -> near-identical sums
        np.testing.assert_allclose(fast.w_in_sums, default.w_in_gradient_rows,
                                   rtol=1e-10, atol=1e-12)
        np.testing.assert_allclose(fast.w_out_sums, default.w_out_gradient_rows,
                                   rtol=1e-10, atol=1e-12)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_engine_step_matches_default_given_same_batches(self, seed):
        """One fast-path step == one default step when fed identical batches."""
        graph = load_dataset("smallworld", num_nodes=50, seed=3)
        proximity = DegreeProximity().compute(graph)
        objective = StructurePreferenceObjective(proximity)
        sampler_rng = np.random.default_rng(seed)
        negative = UnigramNegativeSampler(graph, seed=sampler_rng)
        pool = generate_disjoint_subgraph_arrays(graph, negative, 3)
        pool = pool.with_weights(objective.edge_weights(pool.centers, pool.positives))
        indices = np.random.default_rng(seed + 1).choice(len(pool), size=16, replace=False)
        batch = pool.take(indices)

        model_a = SkipGramModel(graph.num_nodes, 6, seed=seed)
        model_b = SkipGramModel(graph.num_nodes, 6, seed=seed)
        np.testing.assert_array_equal(model_a.w_in, model_b.w_in)
        optimizer_a = SGDOptimizer(0.1)
        optimizer_b = SGDOptimizer(0.1)

        rule_a = DirectSparseUpdate()
        gradients_a = objective.batch_gradients(model_a.w_in, model_a.w_out, batch)
        rule_a.apply(model_a, optimizer_a, batch, gradients_a)

        ws = StepWorkspace(batch_size=16, num_negatives=3, embedding_dim=6,
                           num_nodes=graph.num_nodes)
        rule_b = DirectSparseUpdate()
        rule_b.workspace = ws
        gradients_b = objective.batch_gradients(
            model_b.w_in, model_b.w_out, batch, workspace=ws
        )
        rule_b.apply(model_b, optimizer_b, batch, gradients_b)

        assert gradients_a.mean_loss == pytest.approx(gradients_b.mean_loss, rel=1e-12)
        np.testing.assert_allclose(model_a.w_in, model_b.w_in, rtol=1e-12, atol=1e-13)
        np.testing.assert_allclose(model_a.w_out, model_b.w_out, rtol=1e-12, atol=1e-13)


# --------------------------------------------------------------------- #
# float32 <-> float64 parity across every registered method
# --------------------------------------------------------------------- #
def _small_parity_graph():
    return load_dataset("smallworld", num_nodes=70, seed=5)


_SE_METHODS = ("se_privgemb_dw", "se_privgemb_deg", "se_gemb_dw", "se_gemb_deg")


class TestComputeDtypeParity:
    @pytest.mark.parametrize("method", available_methods())
    def test_float32_matches_float64_at_tolerance(self, method):
        """The satellite contract: float32 runs shadow float64 at rtol<=1e-4.

        SE methods run both dtypes on the *fast path* (index draws and DP
        noise are dtype-independent there, so the two runs see identical
        batches and noise); the one-shot baselines publish a float32 cast
        of their float64 release.
        """
        graph = _small_parity_graph()
        spec = get_method(method)
        training = TrainingConfig(
            embedding_dim=10, batch_size=20, learning_rate=0.1,
            negative_samples=3, epochs=12, seed=0,
        )
        extra = {"fast_path": True} if method in _SE_METHODS else {}
        runs = {}
        for dtype in ("float64", "float32"):
            model = spec.build(
                training=training, privacy=PRIVACY, proximity_cache="off",
                seed=0, compute_dtype=dtype, **extra,
            ).fit(graph)
            runs[dtype] = model
        emb64 = runs["float64"].embeddings_
        emb32 = runs["float32"].embeddings_
        assert emb32.dtype == np.dtype(np.float32)
        assert emb64.dtype == np.dtype(np.float64)
        scale = np.max(np.abs(emb64)) or 1.0
        np.testing.assert_allclose(emb32, emb64, rtol=1e-4, atol=1e-4 * scale)
        losses64 = np.asarray(runs["float64"].result_.losses)
        losses32 = np.asarray(runs["float32"].result_.losses)
        np.testing.assert_allclose(losses32, losses64, rtol=1e-4, atol=1e-6)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=8, deadline=None)
    def test_property_fast32_shadows_fast64_nonprivate(self, seed):
        graph = _small_parity_graph()
        runs = {}
        for dtype in ("float64", "float32"):
            runs[dtype] = SEGEmbTrainer(
                proximity=DegreeProximity(), config=TRAINING, seed=seed,
                fast_path=True, compute_dtype=dtype,
            ).fit(graph)
        emb64 = runs["float64"].embeddings_
        emb32 = runs["float32"].embeddings_
        scale = np.max(np.abs(emb64)) or 1.0
        np.testing.assert_allclose(emb32, emb64, rtol=1e-4, atol=1e-4 * scale)
        np.testing.assert_allclose(
            np.asarray(runs["float32"].result_.losses),
            np.asarray(runs["float64"].result_.losses),
            rtol=1e-4, atol=1e-6,
        )

    def test_fast64_matches_default64_statistics_not_stream(self, graph):
        """Fast and default paths draw different batch streams by design.

        The losses should land in the same range (same objective, same
        distribution) even though the sequences differ.
        """
        default = SEGEmbTrainer(
            proximity=DegreeProximity(), config=TRAINING, seed=0
        ).fit(graph)
        fast = SEGEmbTrainer(
            proximity=DegreeProximity(), config=TRAINING, seed=0, fast_path=True
        ).fit(graph)
        assert fast.result_.final_loss == pytest.approx(
            default.result_.final_loss, rel=0.25
        )

    def test_artifact_roundtrip_replays_fastpath_and_dtype(self, tmp_path, graph):
        model = get_method("se_gemb_deg").build(
            training=TRAINING, seed=0, proximity_cache="off",
            fast_path=True, compute_dtype="float32",
        ).fit(graph)
        path = model.save(tmp_path / "fast.npz")
        reloaded = Embedder.load(path)
        assert reloaded.fast_path is True
        assert reloaded.compute_dtype == np.dtype(np.float32)
        np.testing.assert_array_equal(reloaded.embeddings_, model.embeddings_)


# --------------------------------------------------------------------- #
# workspace reuse cannot leak state between fits
# --------------------------------------------------------------------- #
class TestWorkspaceReuse:
    def test_refit_reuses_workspace_without_leaking(self, graph):
        trainer = SEGEmbTrainer(
            proximity=DegreeProximity(), config=TRAINING, seed=0, fast_path=True
        )
        first = trainer.fit(graph).embeddings_.copy()
        workspace_first = trainer._workspace
        second = trainer.fit(graph).embeddings_
        assert trainer._workspace is workspace_first  # reused, not rebuilt
        fresh = SEGEmbTrainer(
            proximity=DegreeProximity(), config=TRAINING, seed=0, fast_path=True
        ).fit(graph).embeddings_
        np.testing.assert_array_equal(first, second)
        np.testing.assert_array_equal(second, fresh)

    def test_refit_on_other_graph_rebuilds_and_stays_clean(self):
        graph_a = load_dataset("smallworld", num_nodes=60, seed=1)
        graph_b = load_dataset("smallworld", num_nodes=90, seed=2)
        trainer = SEPrivGEmbTrainer(
            proximity=DegreeProximity(), training_config=TRAINING,
            privacy_config=PRIVACY, seed=0, fast_path=True,
        )
        trainer.fit(graph_a)
        ws_a = trainer._workspace
        trainer.fit(graph_b)
        assert trainer._workspace is not ws_a  # geometry changed
        roundtrip = trainer.fit(graph_a).embeddings_
        fresh = SEPrivGEmbTrainer(
            proximity=DegreeProximity(), training_config=TRAINING,
            privacy_config=PRIVACY, seed=0, fast_path=True,
        ).fit(graph_a).embeddings_
        np.testing.assert_array_equal(roundtrip, fresh)


# --------------------------------------------------------------------- #
# steady-state steps do not allocate array-sized blocks (tracemalloc)
# --------------------------------------------------------------------- #
def _phase_peak(callable_, warmups=3):
    """Peak traced allocation of one call, after warm-up calls."""
    for _ in range(warmups):
        callable_()
    tracemalloc.start()
    tracemalloc.reset_peak()
    before = tracemalloc.get_traced_memory()[0]
    callable_()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak - before


class TestZeroAllocation:
    # Python/numpy object overhead per phase (view structs, the loss float,
    # numpy-internal cast buffers) is a few tens of KB; an array-sized
    # allocation at these shapes is >= 192 KB (one [B, 1+k, r] float32
    # block), and the default path peaks in the MBs.
    PHASE_BUDGET = 128 * 1024

    @pytest.fixture(scope="class")
    def alloc_graph(self):
        return load_dataset("smallworld", num_nodes=2000, seed=3)

    def _engine(self, alloc_graph, private):
        config = TrainingConfig(
            embedding_dim=32, batch_size=512, learning_rate=0.1,
            negative_samples=5, epochs=1, seed=0,
        )
        if private:
            trainer = SEPrivGEmbTrainer(
                proximity=DegreeProximity(), training_config=config,
                privacy_config=PRIVACY, seed=0, fast_path=True,
                compute_dtype="float32",
            )
        else:
            trainer = SEGEmbTrainer(
                proximity=DegreeProximity(), config=config, seed=0,
                fast_path=True, compute_dtype="float32",
            )
        trainer._setup(alloc_graph, np.random.default_rng(0))
        engine = trainer.engine
        engine.run(3)  # steady state: caches warm, cast pools built
        engine.update_rule.workspace = engine.workspace
        return trainer, engine

    @pytest.mark.parametrize("private", [False, True], ids=["direct", "perturbed"])
    def test_gradient_perturb_descend_phases_allocate_no_arrays(
        self, alloc_graph, private
    ):
        trainer, engine = self._engine(alloc_graph, private)
        ws = engine.workspace
        model, optimizer = engine.model, engine.optimizer
        batch = engine.sampler.sample_batch_arrays(workspace=ws)

        gradient_peak = _phase_peak(
            lambda: engine.objective.batch_gradients(
                model.w_in, model.w_out, batch, workspace=ws
            )
        )
        assert gradient_peak < self.PHASE_BUDGET, f"gradients allocate {gradient_peak}"

        gradients = engine.objective.batch_gradients(
            model.w_in, model.w_out, batch, workspace=ws
        )
        update_peak = _phase_peak(
            lambda: engine.update_rule.apply(model, optimizer, batch, gradients)
        )
        assert update_peak < self.PHASE_BUDGET, f"update allocates {update_peak}"

    def test_full_fast_step_is_far_below_default_path(self, alloc_graph):
        _, fast_engine = self._engine(alloc_graph, private=True)
        fast_peak = _phase_peak(lambda: fast_engine.step())

        default = SEPrivGEmbTrainer(
            proximity=DegreeProximity(),
            training_config=TrainingConfig(
                embedding_dim=32, batch_size=512, learning_rate=0.1,
                negative_samples=5, epochs=1, seed=0,
            ),
            privacy_config=PRIVACY, seed=0,
        )
        default._setup(alloc_graph, np.random.default_rng(0))
        default.engine.run(3)
        default_peak = _phase_peak(lambda: default.engine.step())

        assert fast_peak < default_peak / 8, (fast_peak, default_peak)
        # one [B, 1+k, r] float32 block would already be 384 KiB
        assert fast_peak < 256 * 1024


# --------------------------------------------------------------------- #
# alias-method negative sampling
# --------------------------------------------------------------------- #
class TestAliasSampler:
    def test_alias_table_preserves_distribution(self):
        graph = load_dataset("smallworld", num_nodes=200, seed=0)
        sampler = UnigramNegativeSampler(graph, seed=0, use_alias=True)
        # marginal check of the raw candidate draw (before rejection)
        draws = sampler._draw_candidates(200_000)
        observed = np.bincount(draws, minlength=graph.num_nodes) / draws.size
        np.testing.assert_allclose(observed, sampler.probabilities, atol=5e-3)

    def test_alias_draws_respect_rejection_contract(self, graph):
        sampler = ProximityNegativeSampler.from_proximity(
            graph, DegreeProximity().compute(graph), seed=3, use_alias=True
        )
        centers = np.arange(graph.num_nodes, dtype=np.int64)
        negatives = sampler.sample_negatives_bulk(centers, 4)
        assert negatives.shape == (graph.num_nodes, 4)
        for center in range(graph.num_nodes):
            for negative in negatives[center]:
                assert not graph.has_edge(center, int(negative))
                assert int(negative) != center

    def test_alias_deterministic_per_seed(self, graph):
        a = UnigramNegativeSampler(graph, seed=11, use_alias=True)
        b = UnigramNegativeSampler(graph, seed=11, use_alias=True)
        centers = np.arange(20, dtype=np.int64)
        np.testing.assert_array_equal(
            a.sample_negatives_bulk(centers, 3), b.sample_negatives_bulk(centers, 3)
        )

    def test_default_stream_is_not_alias_stream(self, graph):
        default = UnigramNegativeSampler(graph, seed=11)
        alias = UnigramNegativeSampler(graph, seed=11, use_alias=True)
        assert default._alias_accept is None  # table only built when opted in
        centers = np.arange(30, dtype=np.int64)
        assert not np.array_equal(
            default.sample_negatives_bulk(centers, 3),
            alias.sample_negatives_bulk(centers, 3),
        )

    def test_fallback_complement_still_works_with_alias(self):
        # near-complete graph: rejection fails, the masked complement kicks in
        edges = [(u, v) for u in range(6) for v in range(u + 1, 6)
                 if not (u == 0 and v == 5)]
        from repro import Graph

        graph = Graph(6, edges)
        sampler = UnigramNegativeSampler(graph, seed=0, use_alias=True)
        negatives = sampler.sample_negatives(0, 5)
        assert set(negatives.tolist()) == {5}
        with pytest.raises(GraphError, match="every other node"):
            sampler.sample_negatives(1, 2)


# --------------------------------------------------------------------- #
# partial Fisher-Yates batch sampling
# --------------------------------------------------------------------- #
class TestFisherYatesSampler:
    def _pool(self, graph):
        proximity = DegreeProximity().compute(graph)
        objective = StructurePreferenceObjective(proximity)
        negative = UnigramNegativeSampler(graph, seed=0)
        pool = generate_disjoint_subgraph_arrays(graph, negative, 3)
        return pool.with_weights(objective.edge_weights(pool.centers, pool.positives))

    def test_without_replacement_and_in_range(self, graph):
        pool = self._pool(graph)
        sampler = SubgraphSampler(pool, 32, seed=0, fast_path=True)
        for _ in range(50):
            indices = sampler.sample_indices()
            assert indices.shape == (32,)
            assert len(np.unique(indices)) == 32
            assert indices.min() >= 0 and indices.max() < len(pool)

    def test_marginal_uniformity(self, graph):
        pool = self._pool(graph)
        sampler = SubgraphSampler(pool, 16, seed=0, fast_path=True)
        hits = np.zeros(len(pool))
        rounds = 3000
        for _ in range(rounds):
            hits[sampler.sample_indices()] += 1
        expected = 16 * rounds / len(pool)
        assert np.all(hits > 0.5 * expected)
        assert np.all(hits < 1.5 * expected)

    def test_deterministic_per_seed_and_distinct_from_default(self, graph):
        pool = self._pool(graph)
        fast_a = SubgraphSampler(pool, 16, seed=5, fast_path=True)
        fast_b = SubgraphSampler(pool, 16, seed=5, fast_path=True)
        np.testing.assert_array_equal(
            fast_a.sample_indices().copy(), fast_b.sample_indices().copy()
        )
        default = SubgraphSampler(pool, 16, seed=5)
        fast_c = SubgraphSampler(pool, 16, seed=5, fast_path=True)
        assert not np.array_equal(default.sample_indices(), fast_c.sample_indices())

    def test_workspace_take_fills_buffers_in_place(self, graph):
        pool = self._pool(graph)
        sampler = SubgraphSampler(pool, 16, seed=0, fast_path=True)
        ws = StepWorkspace(batch_size=16, num_negatives=pool.num_negatives,
                           embedding_dim=4, num_nodes=graph.num_nodes,
                           dtype="float32")
        batch = sampler.sample_batch_arrays(workspace=ws)
        assert batch is ws.batch
        assert batch.weights.dtype == np.dtype(np.float32)
        # the float32 weights mirror the float64 pool values for those rows
        rows = sampler._fy_indices
        np.testing.assert_allclose(
            batch.weights, pool.weights[rows].astype(np.float32), rtol=0, atol=0
        )


# --------------------------------------------------------------------- #
# SGD dtype guard (satellite)
# --------------------------------------------------------------------- #
class TestOptimizerDtypeGuard:
    def test_descend_rejects_float_mismatch_naming_both(self):
        optimizer = SGDOptimizer(0.1)
        params = np.zeros((3, 2), dtype=np.float32)
        with pytest.raises(ConfigurationError, match="float64.*float32"):
            optimizer.descend(params, np.ones((3, 2), dtype=np.float64))

    def test_descend_rows_and_unique_rows_reject_mismatch(self):
        optimizer = SGDOptimizer(0.1)
        params64 = np.zeros((5, 2))
        rows = np.array([0, 1])
        with pytest.raises(ConfigurationError, match="float32.*float64"):
            optimizer.descend_rows(params64, rows, np.ones((2, 2), dtype=np.float32))
        with pytest.raises(ConfigurationError, match="float32.*float64"):
            optimizer.descend_unique_rows(
                params64, rows, np.ones((2, 2), dtype=np.float32)
            )

    def test_integer_gradients_still_cast_losslessly(self):
        optimizer = SGDOptimizer(0.5)
        params = np.zeros((2, 2))
        optimizer.descend(params, np.array([[2, 0], [0, 2]]))
        np.testing.assert_allclose(params, [[-1.0, 0.0], [0.0, -1.0]])

    def test_scratch_descents_match_plain(self):
        optimizer = SGDOptimizer(0.2)
        params_a = np.arange(12, dtype=np.float64).reshape(6, 2)
        params_b = params_a.copy()
        rows = np.array([0, 3, 3, 5])
        grads = np.random.default_rng(0).standard_normal((4, 2))
        optimizer.descend_rows(params_a, rows, grads)
        optimizer.descend_rows(params_b, rows, grads, scratch=np.empty((4, 2)))
        np.testing.assert_array_equal(params_a, params_b)

        params_a = np.arange(12, dtype=np.float64).reshape(6, 2)
        params_b = params_a.copy()
        unique_rows = np.array([1, 4])
        unique_grads = np.random.default_rng(1).standard_normal((2, 2))
        optimizer.descend_unique_rows(params_a, unique_rows, unique_grads)
        optimizer.descend_unique_rows(
            params_b, unique_rows, unique_grads.copy(),
            scratch=np.empty((2, 2)), gather=np.empty((2, 2)),
        )
        np.testing.assert_allclose(params_a, params_b, rtol=1e-15, atol=1e-15)


# --------------------------------------------------------------------- #
# the step profiler
# --------------------------------------------------------------------- #
class TestStepProfiler:
    def test_profile_surfaces_phases_on_engine_result(self, graph):
        trainer = _fast_setup(graph)
        profiler = StepProfiler()
        engine = trainer.engine
        engine.hooks = (*engine.hooks, profiler)
        result = engine.run(8)
        profile = result.profile
        assert profile is not None and profile.steps == 8
        assert set(profile.phase_seconds) == {"sample", "gradients", "descend"}
        assert all(seconds >= 0 for seconds in profile.phase_seconds.values())
        assert profile.total_seconds > 0
        payload = profile.to_dict()
        assert payload["steps"] == 8
        assert set(payload["phase_mean_seconds"]) == set(profile.phase_seconds)

    def test_private_run_records_perturb_phase(self, graph):
        trainer = _fast_setup(graph, private=True)
        profiler = StepProfiler()
        engine = trainer.engine
        engine.hooks = (*engine.hooks, profiler)
        result = engine.run(5)
        assert set(result.profile.phase_seconds) == {
            "sample", "gradients", "perturb", "descend",
        }

    def test_profiler_detaches_after_run(self, graph):
        trainer = _fast_setup(graph)
        profiler = StepProfiler()
        engine = trainer.engine
        engine.hooks = (*engine.hooks, profiler)
        engine.run(3)
        assert engine.profiler is None
        assert engine.update_rule.profiler is None
        # a second run re-profiles from scratch
        second = engine.run(4)
        assert second.profile.steps == 4

    def test_default_path_profiles_too(self, graph):
        trainer = SEGEmbTrainer(proximity=DegreeProximity(), config=TRAINING, seed=0)
        trainer._setup(graph, np.random.default_rng(0))
        profiler = StepProfiler()
        engine = trainer.engine
        engine.hooks = (*engine.hooks, profiler)
        result = engine.run(4)
        assert result.profile.steps == 4
        assert "descend" in result.profile.phase_seconds


# --------------------------------------------------------------------- #
# engine-level wiring
# --------------------------------------------------------------------- #
class TestEngineWorkspaceWiring:
    def test_engine_rejects_model_dtype_mismatch(self, graph):
        trainer = _fast_setup(graph, dtype="float32")
        engine = trainer.engine
        engine.model = SkipGramModel(
            graph.num_nodes, TRAINING.embedding_dim, seed=0, dtype="float64"
        )
        with pytest.raises(ConfigurationError, match="compute"):
            engine.run(1)

    def test_private_fast_run_spends_budget_like_default(self, graph):
        default = SEPrivGEmbTrainer(
            proximity=DegreeProximity(), training_config=TRAINING,
            privacy_config=PRIVACY, seed=0,
        ).fit(graph)
        fast = SEPrivGEmbTrainer(
            proximity=DegreeProximity(), training_config=TRAINING,
            privacy_config=PRIVACY, seed=0, fast_path=True,
        ).fit(graph)
        # the accountant is driven by (sigma, gamma, steps): identical setups
        # must spend identical budgets on both paths
        assert fast.result_.privacy_spent.epsilon == pytest.approx(
            default.result_.privacy_spent.epsilon
        )
        assert fast.result_.epochs_run == default.result_.epochs_run

    def test_perturbed_update_workspace_path_used(self, graph):
        trainer = _fast_setup(graph, private=True)
        engine = trainer.engine
        assert isinstance(engine.update_rule, PerturbedUpdate)
        ws = engine.workspace
        assert ws is not None
        engine.run(2)
        # the reused result holder was filled by the last step
        assert ws.perturb_result.w_in_rows is not None
        assert ws.perturb_result.batch_size == trainer._sampler.batch_size
