"""Tests for the synthetic graph generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GraphError
from repro.graph.generators import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    grid_with_rewiring_graph,
    powerlaw_cluster_graph,
    stochastic_block_model_graph,
    watts_strogatz_graph,
)
from repro.graph.validation import validate_simple_graph


class TestErdosRenyi:
    def test_extreme_probabilities(self):
        empty = erdos_renyi_graph(10, 0.0, seed=0)
        full = erdos_renyi_graph(10, 1.0, seed=0)
        assert empty.num_edges == 0
        assert full.num_edges == 45

    def test_edge_count_close_to_expectation(self):
        g = erdos_renyi_graph(100, 0.1, seed=0)
        expected = 0.1 * 100 * 99 / 2
        assert abs(g.num_edges - expected) < 0.35 * expected

    def test_determinism(self):
        a = erdos_renyi_graph(30, 0.2, seed=3)
        b = erdos_renyi_graph(30, 0.2, seed=3)
        assert a == b

    def test_rejects_bad_probability(self):
        with pytest.raises(GraphError):
            erdos_renyi_graph(10, 1.5)


class TestBarabasiAlbert:
    def test_node_and_edge_counts(self):
        g = barabasi_albert_graph(50, 3, seed=1)
        assert g.num_nodes == 50
        # each of the 47 added nodes contributes m=3 edges
        assert g.num_edges == 47 * 3
        validate_simple_graph(g)

    def test_heavy_tailed_degrees(self):
        g = barabasi_albert_graph(200, 2, seed=2)
        degrees = g.degrees()
        assert degrees.max() > 3 * np.median(degrees)

    def test_rejects_m_not_smaller_than_n(self):
        with pytest.raises(GraphError):
            barabasi_albert_graph(3, 3)
        with pytest.raises(GraphError):
            barabasi_albert_graph(10, 0)

    def test_sequential_stream_is_pinned(self):
        # the default method must keep producing the exact historical graph
        # for a given seed; this pin guards the vectorised-batched addition
        g = barabasi_albert_graph(60, 2, seed=9)
        explicit = barabasi_albert_graph(60, 2, seed=9, method="sequential")
        assert np.array_equal(g.edges, explicit.edges)
        digest = tuple(map(int, g.edges[:5].ravel()))
        assert digest == (0, 2, 0, 3, 0, 4, 0, 7, 0, 8)

    def test_batched_method_is_valid_and_deterministic(self):
        g1 = barabasi_albert_graph(400, 3, seed=4, method="batched")
        g2 = barabasi_albert_graph(400, 3, seed=4, method="batched")
        validate_simple_graph(g1)
        assert np.array_equal(g1.edges, g2.edges)
        assert g1.num_nodes == 400
        # within-batch collisions may drop a few attachments but never many
        assert g1.num_edges > 0.9 * (400 - 3) * 3

    def test_batched_heavy_tailed_degrees(self):
        g = barabasi_albert_graph(2000, 2, seed=5, method="batched")
        degrees = g.degrees()
        assert degrees.max() > 5 * np.median(degrees)

    def test_batched_differs_from_sequential_stream(self):
        seq = barabasi_albert_graph(300, 3, seed=4)
        bat = barabasi_albert_graph(300, 3, seed=4, method="batched")
        assert not np.array_equal(seq.edges, bat.edges)

    def test_rejects_unknown_method(self):
        with pytest.raises(GraphError):
            barabasi_albert_graph(10, 2, method="magic")


class TestWattsStrogatz:
    def test_no_rewiring_keeps_ring_degree(self):
        g = watts_strogatz_graph(20, 4, 0.0, seed=0)
        np.testing.assert_array_equal(g.degrees(), np.full(20, 4))

    def test_rewiring_preserves_edge_count_approximately(self):
        base = watts_strogatz_graph(50, 4, 0.0, seed=0)
        rewired = watts_strogatz_graph(50, 4, 0.5, seed=0)
        assert abs(rewired.num_edges - base.num_edges) <= base.num_edges * 0.1
        validate_simple_graph(rewired)

    def test_rejects_odd_or_too_large_k(self):
        with pytest.raises(GraphError):
            watts_strogatz_graph(10, 3, 0.1)
        with pytest.raises(GraphError):
            watts_strogatz_graph(4, 6, 0.1)


class TestPowerlawCluster:
    def test_basic_shape_and_validity(self):
        g = powerlaw_cluster_graph(80, 4, 0.5, seed=4)
        assert g.num_nodes == 80
        assert g.num_edges >= 76 * 4  # triangle closure adds extra edges
        validate_simple_graph(g)

    def test_triangle_probability_increases_clustering(self):
        flat = powerlaw_cluster_graph(120, 3, 0.0, seed=6)
        clustered = powerlaw_cluster_graph(120, 3, 0.9, seed=6)
        assert clustered.num_edges >= flat.num_edges

    def test_rejects_bad_parameters(self):
        with pytest.raises(GraphError):
            powerlaw_cluster_graph(10, 0, 0.5)
        with pytest.raises(GraphError):
            powerlaw_cluster_graph(10, 2, 1.5)


class TestStochasticBlockModel:
    def test_intra_block_denser_than_inter(self):
        g = stochastic_block_model_graph([40, 40], 0.3, 0.01, seed=7)
        adjacency = np.asarray(g.adjacency_matrix(dense=True))
        intra = adjacency[:40, :40].sum() + adjacency[40:, 40:].sum()
        inter = adjacency[:40, 40:].sum() * 2
        assert intra > inter

    def test_rejects_empty_or_negative_blocks(self):
        with pytest.raises(GraphError):
            stochastic_block_model_graph([], 0.1, 0.1)
        with pytest.raises(GraphError):
            stochastic_block_model_graph([5, -1], 0.1, 0.1)


class TestGrid:
    def test_pure_grid_edge_count(self):
        g = grid_with_rewiring_graph(5, 4, 0.0)
        # rows*(cols-1) + cols*(rows-1) = 5*3 + 4*4 = 31
        assert g.num_edges == 31
        assert g.num_nodes == 20

    def test_rewired_grid_stays_valid(self):
        g = grid_with_rewiring_graph(8, 8, 0.2, seed=9)
        validate_simple_graph(g)

    def test_rejects_bad_dimensions(self):
        with pytest.raises(GraphError):
            grid_with_rewiring_graph(0, 5)
