"""Tests for the core Graph data structure."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro import Graph, GraphError
from repro.graph import load_dataset
from repro.graph.validation import validate_simple_graph


class TestConstruction:
    def test_basic_properties(self, triangle_graph):
        assert triangle_graph.num_nodes == 4
        assert triangle_graph.num_edges == 4
        assert len(triangle_graph) == 4
        assert list(iter(triangle_graph)) == [0, 1, 2, 3]

    def test_duplicate_and_mirrored_edges_collapse(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1), (1, 2)])
        assert g.num_edges == 2

    def test_rejects_self_loop(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 0)])

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(GraphError):
            Graph(3, [(0, 5)])

    def test_rejects_non_positive_node_count(self):
        with pytest.raises(GraphError):
            Graph(0, [])

    def test_from_edge_list_infers_node_count(self):
        g = Graph.from_edge_list([(0, 3), (1, 2)])
        assert g.num_nodes == 4

    def test_from_edge_list_empty_requires_num_nodes(self):
        with pytest.raises(GraphError):
            Graph.from_edge_list([])
        g = Graph.from_edge_list([], num_nodes=5)
        assert g.num_edges == 0

    def test_from_adjacency_round_trip(self, triangle_graph):
        dense = triangle_graph.adjacency_matrix(dense=True)
        rebuilt = Graph.from_adjacency(dense)
        assert rebuilt == triangle_graph

    def test_from_networkx(self):
        nx = pytest.importorskip("networkx")
        nx_graph = nx.karate_club_graph()
        g = Graph.from_networkx(nx_graph)
        assert g.num_nodes == nx_graph.number_of_nodes()
        assert g.num_edges == nx_graph.number_of_edges()


class TestAccessors:
    def test_degrees(self, triangle_graph):
        np.testing.assert_array_equal(triangle_graph.degrees(), [3, 2, 2, 1])
        assert triangle_graph.degree(0) == 3
        assert triangle_graph.degree(3) == 1

    def test_neighbors_sorted(self, triangle_graph):
        np.testing.assert_array_equal(triangle_graph.neighbors(0), [1, 2, 3])
        np.testing.assert_array_equal(triangle_graph.neighbors(3), [0])

    def test_has_edge(self, triangle_graph):
        assert triangle_graph.has_edge(0, 1)
        assert triangle_graph.has_edge(1, 0)
        assert not triangle_graph.has_edge(1, 3)
        assert not triangle_graph.has_edge(2, 2)

    def test_has_edges_bulk_matches_scalar(self, small_graph, rng):
        u = rng.integers(0, small_graph.num_nodes, 500)
        v = rng.integers(0, small_graph.num_nodes, 500)
        bulk = small_graph.has_edges_bulk(u, v)
        scalar = np.array([small_graph.has_edge(int(a), int(b)) for a, b in zip(u, v, strict=True)])
        np.testing.assert_array_equal(bulk, scalar)
        # both directions of a known edge, and self-pairs, behave like has_edge
        edge = small_graph.edges[0]
        np.testing.assert_array_equal(
            small_graph.has_edges_bulk(
                np.array([edge[0], edge[1], 0]), np.array([edge[1], edge[0], 0])
            ),
            [True, True, False],
        )

    def test_has_edges_bulk_rejects_out_of_range(self, small_graph):
        n = small_graph.num_nodes
        # (0, n) would alias to key (1, 0) through row*n+col arithmetic
        with pytest.raises(GraphError):
            small_graph.has_edges_bulk(np.array([0]), np.array([n]))
        with pytest.raises(GraphError):
            small_graph.has_edges_bulk(np.array([-1]), np.array([0]))

    def test_node_out_of_range_raises(self, triangle_graph):
        with pytest.raises(GraphError):
            triangle_graph.degree(99)
        with pytest.raises(GraphError):
            triangle_graph.neighbors(-1)

    def test_adjacency_matrix_symmetric_zero_diagonal(self, triangle_graph):
        adj = triangle_graph.adjacency_matrix()
        assert sparse.issparse(adj)
        dense = triangle_graph.adjacency_matrix(dense=True)
        np.testing.assert_allclose(dense, dense.T)
        np.testing.assert_allclose(np.diag(dense), np.zeros(4))
        assert dense.sum() == 2 * triangle_graph.num_edges

    def test_density(self, triangle_graph):
        assert triangle_graph.density == pytest.approx(4 / 6)

    def test_edges_are_canonical(self, triangle_graph):
        edges = triangle_graph.edges
        assert np.all(edges[:, 0] < edges[:, 1])


class TestOperations:
    def test_subgraph_without_edges(self, triangle_graph):
        pruned = triangle_graph.subgraph_without_edges([(0, 1)])
        assert pruned.num_edges == 3
        assert not pruned.has_edge(0, 1)
        assert pruned.num_nodes == triangle_graph.num_nodes

    def test_with_extra_edges(self, path_graph):
        augmented = path_graph.with_extra_edges([(0, 4)])
        assert augmented.num_edges == path_graph.num_edges + 1
        assert augmented.has_edge(0, 4)

    def test_remove_node_edges(self, star_graph):
        removed = star_graph.remove_node_edges(0)
        assert removed.num_edges == 0
        assert removed.num_nodes == star_graph.num_nodes

    def test_connected_components(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4)])
        components = g.connected_components()
        sizes = sorted(len(c) for c in components)
        assert sizes == [1, 2, 3]
        assert len(components[0]) == 3  # largest first

    def test_non_edges_sample(self, path_graph, rng):
        non_edges = path_graph.non_edges_sample(3, rng)
        assert non_edges.shape == (3, 2)
        for u, v in non_edges:
            assert not path_graph.has_edge(int(u), int(v))
            assert u != v

    def test_non_edges_sample_exhaustion_raises(self, rng):
        complete = Graph(3, [(0, 1), (0, 2), (1, 2)])
        with pytest.raises(GraphError):
            complete.non_edges_sample(1, rng)

    def test_non_edges_sample_preserves_draw_order(self):
        # the old implementation returned sorted(found): a prefix slice was
        # biased toward low node indices instead of reflecting draw order
        graph = load_dataset("smallworld", num_nodes=100, seed=4)
        sample = graph.non_edges_sample(150, np.random.default_rng(0))
        rows = [tuple(int(x) for x in row) for row in sample]
        assert rows != sorted(rows)
        assert len(set(rows)) == len(rows)

    def test_non_edges_sample_is_deterministic_given_rng(self):
        graph = load_dataset("smallworld", num_nodes=80, seed=4)
        a = graph.non_edges_sample(40, np.random.default_rng(9))
        b = graph.non_edges_sample(40, np.random.default_rng(9))
        np.testing.assert_array_equal(a, b)

    def test_non_edges_sample_rows_are_canonical(self):
        graph = load_dataset("smallworld", num_nodes=60, seed=4)
        sample = graph.non_edges_sample(30, np.random.default_rng(1))
        assert np.all(sample[:, 0] < sample[:, 1])

    def test_non_edges_sample_dense_graph_succeeds(self):
        # a near-complete graph used to exhaust the attempt budget and
        # raise spuriously; the exact-complement fallback must succeed
        # whenever enough non-edges exist at all
        n = 40
        missing = {(i, (i + 1) % n) for i in range(n)}
        edges = [
            (u, v)
            for u in range(n)
            for v in range(u + 1, n)
            if (u, v) not in missing and (v, u) not in missing
        ]
        dense = Graph(n, edges)
        assert dense.density > 0.9
        want = n * (n - 1) // 2 - dense.num_edges
        sample = dense.non_edges_sample(want, np.random.default_rng(2))
        assert sample.shape == (want, 2)
        for u, v in sample:
            assert not dense.has_edge(int(u), int(v))

    def test_non_edges_sample_dense_graph_respects_exclude(self):
        complete_minus_two = Graph(
            5, [(u, v) for u in range(5) for v in range(u + 1, 5)][:-2]
        )
        remaining = complete_minus_two.non_edges_sample(2, np.random.default_rng(0))
        excluded = [tuple(int(x) for x in remaining[0])]
        sample = complete_minus_two.non_edges_sample(
            1, np.random.default_rng(0), exclude=excluded
        )
        assert tuple(int(x) for x in sample[0]) != excluded[0]

    def test_non_edges_sample_zero_count(self, path_graph, rng):
        sample = path_graph.non_edges_sample(0, rng)
        assert sample.shape == (0, 2)

    def test_non_edges_sample_negative_count_raises(self, path_graph, rng):
        with pytest.raises(GraphError):
            path_graph.non_edges_sample(-1, rng)

    def test_non_edges_sample_counts_exclude_against_capacity(self, rng):
        # 4 nodes, path 0-1-2-3: non-edges are (0,2), (0,3), (1,3)
        path = Graph(4, [(0, 1), (1, 2), (2, 3)])
        with pytest.raises(GraphError):
            path.non_edges_sample(3, rng, exclude=[(0, 2)])
        sample = path.non_edges_sample(2, rng, exclude=[(0, 2)])
        assert {tuple(int(x) for x in row) for row in sample} == {(0, 3), (1, 3)}

    def test_non_edges_sample_ignores_degenerate_excludes(self, rng):
        # self-pairs, out-of-range pairs and existing edges in the exclude
        # list can never be drawn, so they must not count against capacity
        path = Graph(4, [(0, 1), (1, 2), (2, 3)])
        sample = path.non_edges_sample(3, rng, exclude=[(1, 1), (0, 9), (0, 1)])
        assert {tuple(int(x) for x in row) for row in sample} == {(0, 2), (0, 3), (1, 3)}

    def test_equality(self, triangle_graph):
        same = Graph(4, [(0, 1), (1, 2), (0, 2), (0, 3)])
        assert triangle_graph == same
        other = Graph(4, [(0, 1), (1, 2), (0, 2)])
        assert triangle_graph != other


class TestValidation:
    def test_valid_graph_passes(self, triangle_graph):
        validate_simple_graph(triangle_graph)

    def test_empty_graph_fails_by_default(self):
        g = Graph(3, [])
        with pytest.raises(GraphError):
            validate_simple_graph(g)
        validate_simple_graph(g, require_edges=False)
