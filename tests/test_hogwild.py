"""Tests for the sharded shared-memory (hogwild) training subsystem.

Covers the shared-memory model lifecycle, shard planning, profile merging,
the privacy accountant's shard composition, the exact workers=1 pins, the
hogwild-vs-serial quality tolerance, crash/cleanup behaviour, and the
fork-unavailable fallback.
"""

from __future__ import annotations

import glob
import multiprocessing
import os

import numpy as np
import pytest

from repro.config import PrivacyConfig, TrainingConfig
from repro.embedding import (
    SEGEmbTrainer,
    SEPrivGEmbTrainer,
    SharedModelHandle,
    SharedSkipGramModel,
    SkipGramModel,
)
from repro.embedding.shared_model import SHARED_SEGMENT_PREFIX
from repro.engine import StepProfile, plan_shards, run_hogwild
from repro.exceptions import PrivacyError, TrainingError
from repro.graph import generators
from repro.privacy import RdpAccountant
from repro.proximity import get_proximity
from repro.utils import mp as repro_mp

FORK_ONLY = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="hogwild workers require the fork start method",
)

TRAIN = TrainingConfig(
    embedding_dim=8, epochs=40, batch_size=16, learning_rate=0.05, negative_samples=2
)
PRIVACY = PrivacyConfig(
    epsilon=2.0, delta=1e-5, noise_multiplier=2.0, clipping_threshold=1.0
)


def _graph(seed: int = 1, nodes: int = 150):
    return generators.barabasi_albert_graph(nodes, 3, seed=seed)


def _shm_segments() -> list[str]:
    return glob.glob(f"/dev/shm/{SHARED_SEGMENT_PREFIX}*")


# --------------------------------------------------------------------- #
# shared model lifecycle
# --------------------------------------------------------------------- #
class TestSharedSkipGramModel:
    def test_init_matches_plain_model_bitwise(self):
        plain = SkipGramModel(50, 8, seed=3)
        shared = SharedSkipGramModel(50, 8, seed=3)
        try:
            assert np.array_equal(plain.w_in, shared.w_in)
            assert np.array_equal(plain.w_out, shared.w_out)
        finally:
            shared.release()

    def test_attach_sees_owner_writes(self):
        owner = SharedSkipGramModel(20, 4, seed=0)
        try:
            view = SharedSkipGramModel.attach(owner.handle)
            owner.w_in[3, :] = 42.0
            assert np.array_equal(view.w_in[3], np.full(4, 42.0))
            view.release()
        finally:
            owner.release()

    def test_release_unlinks_segments(self):
        model = SharedSkipGramModel(20, 4, seed=0)
        names = {model.handle.w_in_name, model.handle.w_out_name}
        assert all(os.path.exists(f"/dev/shm/{n}") for n in names)
        model.release()
        assert not any(os.path.exists(f"/dev/shm/{n}") for n in names)

    def test_release_is_idempotent_and_keeps_values(self):
        model = SharedSkipGramModel(20, 4, seed=0)
        model.w_in[0, 0] = 7.5
        model.release()
        model.release()
        assert model.w_in[0, 0] == 7.5
        with pytest.raises(TrainingError):
            _ = model.handle

    def test_garbage_collection_unlinks(self):
        model = SharedSkipGramModel(20, 4, seed=0)
        handle = model.handle
        names = {handle.w_in_name, handle.w_out_name}
        del model
        assert not any(os.path.exists(f"/dev/shm/{n}") for n in names)

    def test_accumulator_garbage_collection_unlinks(self):
        # SHM001 regression (repro.analysis): _SharedAccumulator used to
        # rely solely on run_hogwild's finally for cleanup — an abandoned
        # accumulator leaked its two segments into /dev/shm until process
        # exit.  The weakref.finalize backstop must release them at GC.
        from repro.engine.hogwild import _SharedAccumulator

        before = set(glob.glob("/dev/shm/psm_*")) | set(glob.glob("/dev/shm/wnsm_*"))
        accumulator = _SharedAccumulator((8, 4))
        names = {block.name for block in accumulator._blocks}
        assert all(os.path.exists(f"/dev/shm/{n}") for n in names)
        del accumulator
        assert not any(os.path.exists(f"/dev/shm/{n}") for n in names)
        after = set(glob.glob("/dev/shm/psm_*")) | set(glob.glob("/dev/shm/wnsm_*"))
        assert after <= before

    def test_accumulator_destroy_detaches_finalizer(self):
        from repro.engine.hogwild import _SharedAccumulator

        accumulator = _SharedAccumulator((8, 4))
        names = {block.name for block in accumulator._blocks}
        accumulator.destroy()
        assert not any(os.path.exists(f"/dev/shm/{n}") for n in names)
        assert not accumulator._finalizer.alive

    def test_handle_roundtrip_fields(self):
        model = SharedSkipGramModel(20, 4, seed=0, dtype=np.float32)
        try:
            handle = model.handle
            assert isinstance(handle, SharedModelHandle)
            assert handle.num_nodes == 20
            assert handle.embedding_dim == 4
        finally:
            model.release()


# --------------------------------------------------------------------- #
# shard planning and profile merging
# --------------------------------------------------------------------- #
class TestPlanShards:
    def test_balanced_split(self):
        assert plan_shards(10, 3) == [4, 3, 3]
        assert plan_shards(9, 3) == [3, 3, 3]

    def test_no_empty_shards(self):
        assert plan_shards(2, 4) == [1, 1]

    def test_invalid(self):
        with pytest.raises(TrainingError):
            plan_shards(0, 2)
        with pytest.raises(TrainingError):
            plan_shards(5, 0)


class TestStepProfileMerge:
    def test_merge_sums_phases_and_workers(self):
        a = StepProfile(steps=5, phase_seconds={"sample": 1.0, "descend": 2.0}, workers=1)
        b = StepProfile(steps=7, phase_seconds={"sample": 0.5, "perturb": 1.5}, workers=1)
        merged = StepProfile.merge([a, b])
        assert merged.steps == 12
        assert merged.workers == 2
        assert merged.phase_seconds["sample"] == pytest.approx(1.5)
        assert merged.phase_seconds["perturb"] == pytest.approx(1.5)
        assert merged.to_dict()["workers"] == 2

    def test_merge_empty(self):
        merged = StepProfile.merge([])
        assert merged.steps == 0
        assert merged.workers == 1


# --------------------------------------------------------------------- #
# accountant shard composition
# --------------------------------------------------------------------- #
class TestStepShards:
    def test_shards_equal_serial_exactly(self):
        serial = RdpAccountant(noise_multiplier=1.5, sampling_rate=0.05)
        sharded = RdpAccountant(noise_multiplier=1.5, sampling_rate=0.05)
        for _ in range(60):
            serial.step()
        sharded.step_shards([20, 20, 20])
        assert sharded.steps == serial.steps
        s1 = serial.get_privacy_spent(1e-5)
        s2 = sharded.get_privacy_spent(1e-5)
        assert s2.epsilon == s1.epsilon
        assert np.array_equal(sharded.total_rdp, serial.total_rdp)

    @pytest.mark.parametrize("workers", [2, 3, 5])
    def test_k_workers_t_over_k_steps(self, workers):
        total = 90
        serial = RdpAccountant(noise_multiplier=2.0, sampling_rate=0.1)
        serial.step(total)
        sharded = RdpAccountant(noise_multiplier=2.0, sampling_rate=0.1)
        counts = plan_shards(total, workers)
        sharded.step_shards(counts)
        assert sum(counts) == total
        assert (
            sharded.get_privacy_spent(1e-5).epsilon
            == serial.get_privacy_spent(1e-5).epsilon
        )

    def test_negative_count_rejected(self):
        acc = RdpAccountant(noise_multiplier=1.0, sampling_rate=0.1)
        with pytest.raises(PrivacyError):
            acc.step_shards([5, -1])


# --------------------------------------------------------------------- #
# fork fallback
# --------------------------------------------------------------------- #
class TestForkFallback:
    def test_resolve_warns_and_degrades(self, monkeypatch):
        monkeypatch.setattr(repro_mp, "start_method", lambda: "spawn")
        with pytest.warns(RuntimeWarning, match="falling back to the serial path"):
            assert repro_mp.resolve_fork_workers(4, "hogwild training") == 1

    def test_resolve_noop_for_serial(self, monkeypatch):
        monkeypatch.setattr(repro_mp, "start_method", lambda: "spawn")
        assert repro_mp.resolve_fork_workers(1, "hogwild training") == 1

    def test_trainer_falls_back_to_serial_result(self, monkeypatch):
        monkeypatch.setattr(repro_mp, "start_method", lambda: "spawn")
        graph = _graph()
        serial = SEGEmbTrainer(proximity=get_proximity("degree"), config=TRAIN, seed=5)
        serial.fit(graph)
        degraded = SEGEmbTrainer(
            proximity=get_proximity("degree"), config=TRAIN, seed=5, workers=3
        )
        with pytest.warns(RuntimeWarning, match="falling back to the serial path"):
            degraded.fit(graph)
        assert np.array_equal(serial.embeddings_, degraded.embeddings_)


# --------------------------------------------------------------------- #
# trainer parity and hogwild end-to-end
# --------------------------------------------------------------------- #
class TestWorkersOne:
    def test_nonprivate_workers_one_is_bitwise_serial(self):
        graph = _graph()
        serial = SEGEmbTrainer(proximity=get_proximity("degree"), config=TRAIN, seed=5)
        serial.fit(graph)
        pinned = SEGEmbTrainer(
            proximity=get_proximity("degree"), config=TRAIN, seed=5, workers=1
        )
        pinned.fit(graph)
        assert np.array_equal(serial.embeddings_, pinned.embeddings_)
        assert serial.result_.losses == pinned.result_.losses

    def test_private_workers_one_is_bitwise_serial(self):
        graph = _graph()
        serial = SEPrivGEmbTrainer(
            proximity=get_proximity("degree"),
            training_config=TRAIN,
            privacy_config=PRIVACY,
            seed=5,
        )
        serial.fit(graph)
        pinned = SEPrivGEmbTrainer(
            proximity=get_proximity("degree"),
            training_config=TRAIN,
            privacy_config=PRIVACY,
            seed=5,
            workers=1,
        )
        pinned.fit(graph)
        assert np.array_equal(serial.embeddings_, pinned.embeddings_)
        assert (
            serial.result_.privacy_spent.epsilon
            == pinned.result_.privacy_spent.epsilon
        )

    def test_invalid_workers_rejected(self):
        with pytest.raises(TrainingError):
            SEGEmbTrainer(proximity=get_proximity("degree"), config=TRAIN, workers=0)


@FORK_ONLY
class TestHogwildTraining:
    def test_nonprivate_two_workers_trains(self):
        graph = _graph()
        trainer = SEGEmbTrainer(
            proximity=get_proximity("degree"), config=TRAIN, seed=5, workers=2
        )
        trainer.fit(graph)
        assert np.isfinite(trainer.embeddings_).all()
        assert trainer.result_.epochs_run == TRAIN.epochs
        assert len(trainer.result_.losses) == TRAIN.epochs
        assert [r.steps for r in trainer.last_worker_reports] == plan_shards(
            TRAIN.epochs, 2
        )
        pids = {r.pid for r in trainer.last_worker_reports}
        assert len(pids) == 2 and os.getpid() not in pids
        assert not _shm_segments()

    def test_hogwild_loss_close_to_serial(self):
        graph = _graph(nodes=300)
        config = TrainingConfig(
            embedding_dim=16,
            epochs=120,
            batch_size=32,
            learning_rate=0.05,
            negative_samples=3,
        )
        serial = SEGEmbTrainer(proximity=get_proximity("degree"), config=config, seed=5)
        serial.fit(graph)
        hogwild = SEGEmbTrainer(
            proximity=get_proximity("degree"), config=config, seed=5, workers=2
        )
        hogwild.fit(graph)
        tail = 20
        serial_tail = float(np.mean(serial.result_.losses[-tail:]))
        hogwild_tail = float(np.mean(hogwild.result_.losses[-tail:]))
        # benign races + different shard streams: same optimisation quality,
        # not the same iterates — final losses agree to a loose tolerance
        assert hogwild_tail == pytest.approx(serial_tail, rel=0.35)

    def test_private_shard_accounting_matches_serial(self):
        graph = _graph()
        serial = SEPrivGEmbTrainer(
            proximity=get_proximity("degree"),
            training_config=TRAIN,
            privacy_config=PRIVACY,
            seed=5,
        )
        serial.fit(graph)
        hogwild = SEPrivGEmbTrainer(
            proximity=get_proximity("degree"),
            training_config=TRAIN,
            privacy_config=PRIVACY,
            seed=5,
            workers=2,
        )
        hogwild.fit(graph)
        assert (
            hogwild.result_.privacy_spent.epsilon
            == serial.result_.privacy_spent.epsilon
        )
        assert (
            hogwild.result_.privacy_spent.steps == serial.result_.privacy_spent.steps
        )
        assert sum(r.steps for r in hogwild.last_worker_reports) == (
            serial.result_.privacy_spent.steps
        )
        assert not _shm_segments()

    def test_private_budget_truncation_matches_serial(self):
        graph = _graph()
        tight = PrivacyConfig(
            epsilon=0.8, delta=1e-5, noise_multiplier=1.0, clipping_threshold=1.0
        )
        serial = SEPrivGEmbTrainer(
            proximity=get_proximity("degree"),
            training_config=TRAIN,
            privacy_config=tight,
            seed=5,
        )
        serial.fit(graph)
        hogwild = SEPrivGEmbTrainer(
            proximity=get_proximity("degree"),
            training_config=TRAIN,
            privacy_config=tight,
            seed=5,
            workers=2,
        )
        hogwild.fit(graph)
        assert hogwild.result_.stopped_early == serial.result_.stopped_early
        assert (
            hogwild.result_.privacy_spent.epsilon
            == serial.result_.privacy_spent.epsilon
        )
        assert hogwild.result_.privacy_spent.epsilon <= tight.epsilon

    def test_merged_profile_reports_worker_count(self):
        graph = _graph()
        trainer = SEGEmbTrainer(
            proximity=get_proximity("degree"), config=TRAIN, seed=5, workers=2
        )
        trainer.fit(graph)
        profiles = [r.profile for r in trainer.last_worker_reports]
        merged = StepProfile.merge(profiles)
        assert merged.workers == 2
        assert merged.steps == TRAIN.epochs

    def test_worker_memory_stays_flat(self):
        graph = _graph()
        config = TrainingConfig(
            embedding_dim=8,
            epochs=160,
            batch_size=16,
            learning_rate=0.05,
            negative_samples=2,
        )
        trainer = SEGEmbTrainer(
            proximity=get_proximity("degree"), config=config, seed=5, workers=2
        )
        trainer.trace_hogwild_memory = True
        trainer.fit(graph)
        for report in trainer.last_worker_reports:
            assert report.traced_steps > 0
            # zero-allocation invariant per worker: the measured window may
            # not grow the heap by more than a small constant overhead
            assert report.traced_bytes < 64 * 1024, report

    def test_refit_after_hogwild_works(self):
        graph = _graph()
        trainer = SEGEmbTrainer(
            proximity=get_proximity("degree"), config=TRAIN, seed=5, workers=2
        )
        trainer.fit(graph)
        first = trainer.embeddings_.copy()
        trainer.fit(graph)
        # hogwild is reproducible in distribution only (race interleavings
        # differ run to run), so refit checks health, not bitwise equality
        assert trainer.embeddings_.shape == first.shape
        assert np.isfinite(trainer.embeddings_).all()
        assert not _shm_segments()


@FORK_ONLY
class TestCrashCleanup:
    def test_worker_crash_raises_and_unlinks(self):
        model = SharedSkipGramModel(30, 4, seed=0)
        names = {model.handle.w_in_name, model.handle.w_out_name}

        def exploding_factory(rng):
            raise RuntimeError("boom in worker")

        with pytest.raises(TrainingError, match="shard"):
            run_hogwild(
                model=model,
                engine_factory=exploding_factory,
                total_steps=8,
                workers=2,
                seed=0,
            )
        model.release()
        assert not any(os.path.exists(f"/dev/shm/{n}") for n in names)
        assert not _shm_segments()

    def test_released_model_rejected(self):
        model = SharedSkipGramModel(30, 4, seed=0)
        model.release()
        with pytest.raises(TrainingError):
            run_hogwild(
                model=model,
                engine_factory=lambda rng: None,
                total_steps=4,
                workers=2,
                seed=0,
            )
