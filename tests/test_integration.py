"""End-to-end integration tests across modules.

These exercise the full pipeline the README quickstart describes: load a
dataset, compute a proximity, train private and non-private embeddings,
and evaluate both downstream tasks — plus the qualitative claims of the
paper that the reproduction is expected to preserve.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    PrivacyConfig,
    SEGEmbTrainer,
    SEPrivGEmbTrainer,
    TrainingConfig,
    link_prediction_auc,
    load_dataset,
    make_link_prediction_split,
    structural_equivalence_score,
)
from repro.baselines import get_baseline
from repro.proximity import DeepWalkProximity, DegreeProximity

pytestmark = pytest.mark.integration


@pytest.fixture(scope="module")
def graph():
    """A chameleon stand-in big enough for the qualitative claims to show."""
    return load_dataset("chameleon", num_nodes=120, seed=0)


@pytest.fixture(scope="module")
def training_config():
    return TrainingConfig(
        embedding_dim=16, batch_size=96, learning_rate=0.1, negative_samples=5, epochs=250
    )


class TestEndToEndPipeline:
    def test_quickstart_pipeline(self, graph):
        """The README quickstart: private training + both evaluations."""
        config = TrainingConfig(
            embedding_dim=16, batch_size=64, learning_rate=0.1, negative_samples=3, epochs=15
        )
        trainer = SEPrivGEmbTrainer(
            graph,
            DeepWalkProximity(window_size=3),
            training_config=config,
            privacy_config=PrivacyConfig(epsilon=2.0),
            seed=0,
        )
        result = trainer.train()
        assert result.privacy_spent.epsilon <= 2.0 + 1e-9

        strucequ = structural_equivalence_score(graph, result.embeddings)
        assert -1.0 <= strucequ <= 1.0

        split = make_link_prediction_split(graph, seed=0)
        auc = link_prediction_auc(result.embeddings, split)
        assert 0.0 <= auc <= 1.0

    def test_nonprivate_training_learns_structure(self, graph, training_config):
        """SE-GEmb must clearly beat random embeddings on structural equivalence."""
        trainer = SEGEmbTrainer(graph, DeepWalkProximity(window_size=5), config=training_config, seed=0)
        result = trainer.train()
        learned = structural_equivalence_score(graph, result.embeddings)
        random_score = structural_equivalence_score(
            graph, np.random.default_rng(0).normal(size=result.embeddings.shape)
        )
        assert learned > random_score + 0.2
        assert learned > 0.3

    def test_nonzero_beats_naive_perturbation(self, graph, training_config):
        """The Table-VI ablation: non-zero perturbation preserves far more utility."""
        common = dict(
            training_config=training_config,
            privacy_config=PrivacyConfig(epsilon=3.5),
            seed=1,
        )
        nonzero = SEPrivGEmbTrainer(
            graph, DeepWalkProximity(window_size=5), perturbation="nonzero", **common
        ).train()
        naive = SEPrivGEmbTrainer(
            graph, DeepWalkProximity(window_size=5), perturbation="naive", **common
        ).train()
        score_nonzero = structural_equivalence_score(graph, nonzero.embeddings)
        score_naive = structural_equivalence_score(graph, naive.embeddings)
        assert score_nonzero > score_naive + 0.1

    def test_private_methods_beat_gnn_baselines(self, graph, training_config):
        """The Figure-3 ordering: SE-PrivGEmb above the aggregation-perturbation GNNs."""
        privacy = PrivacyConfig(epsilon=3.5)
        se_priv = SEPrivGEmbTrainer(
            graph,
            DegreeProximity(),
            training_config=training_config,
            privacy_config=privacy,
            seed=2,
        ).train()
        se_priv_score = structural_equivalence_score(graph, se_priv.embeddings)

        for baseline_name in ("gap", "progap"):
            baseline = get_baseline(
                baseline_name,
                training_config=training_config,
                privacy_config=privacy,
                seed=2,
            )
            baseline_score = structural_equivalence_score(graph, baseline.fit_transform(graph))
            assert se_priv_score > baseline_score

    def test_privacy_budget_controls_training_length(self, graph, training_config):
        """Smaller ε must stop training earlier (Algorithm 2 lines 8-10)."""
        def epochs_at(epsilon):
            trainer = SEPrivGEmbTrainer(
                graph,
                DegreeProximity(),
                training_config=training_config.with_updates(epochs=10_000),
                privacy_config=PrivacyConfig(epsilon=epsilon),
                seed=0,
            )
            return trainer.max_private_epochs()

        assert epochs_at(0.5) < epochs_at(2.0) < epochs_at(3.5)

    def test_post_processing_keeps_embeddings_usable_for_both_tasks(self, graph):
        """Theorem 2: downstream tasks consume the same private embeddings."""
        config = TrainingConfig(
            embedding_dim=16, batch_size=64, learning_rate=0.1, negative_samples=3, epochs=20
        )
        split = make_link_prediction_split(graph, seed=3)
        result = SEPrivGEmbTrainer(
            split.training_graph,
            DegreeProximity(),
            training_config=config,
            privacy_config=PrivacyConfig(epsilon=3.5),
            seed=3,
        ).train()
        auc = link_prediction_auc(result.embeddings, split)
        strucequ = structural_equivalence_score(split.training_graph, result.embeddings)
        assert 0.0 <= auc <= 1.0
        assert -1.0 <= strucequ <= 1.0
