"""Tests for the unified estimator API: registry, artifacts, shims.

Covers the `repro.models` subsystem introduced by the estimator redesign:

* the declarative :class:`MethodSpec` registry (eight paper methods,
  aliases, did-you-mean errors, custom registration),
* ``build(...).fit(graph)`` for every registered method,
* ``save`` / ``load`` artifact round-trips (bit-exact embeddings, privacy
  spent preserved, registry-drift detection),
* the deprecation shims for the pre-estimator entry points, and
* the registry fingerprint pins that keep stored RunStore caches honest.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ConfigurationError,
    Embedder,
    PrivacyConfig,
    TrainingConfig,
    TrainingError,
    available_methods,
    get_method,
)
from repro.baselines import GAP
from repro.embedding import SEGEmbTrainer, SEPrivGEmbTrainer
from repro.exceptions import ArtifactError
from repro.experiments import embed_with_method
from repro.graph import load_dataset
from repro.models import FitResult, MethodSpec, load_artifact, register, save_artifact
from repro.proximity import DegreeProximity, ProximityCache
from repro.utils.rng import ensure_rng

FAST_TRAINING = TrainingConfig(
    embedding_dim=8, batch_size=24, learning_rate=0.1, negative_samples=3, epochs=4
)
FAST_PRIVACY = PrivacyConfig(epsilon=2.0)

PAPER_METHOD_NAMES = (
    "se_privgemb_dw",
    "se_privgemb_deg",
    "se_gemb_dw",
    "se_gemb_deg",
    "dpggan",
    "dpgvae",
    "gap",
    "progap",
)

#: pinned content fingerprints of the eight registered method definitions.
#: A change here means every stored RunStore cell keyed on the method is
#: (correctly) invalidated — bump the pin only when the method *semantics*
#: deliberately changed.
METHOD_FINGERPRINT_PINS = {
    "se_privgemb_dw": "2f2f7130b5f0a5c25bc6d43270c1b9cb9b9488a5e9f6b3b81117ff18597abcaf",
    "se_privgemb_deg": "53346ac6aa2bb36bee3f740c006095cd56ca277787ee905e9381330a5c609b9e",
    "se_gemb_dw": "ed836c514d0c5be93f56331acf379b076c1a7722c2a588e1984ca2db7d453896",
    "se_gemb_deg": "1f41f714539834b9e21a25c3549294c47f1b25b2faa527824a38191492de1a69",
    "dpggan": "76540a8be925dd7737833a053437a4f4ce9f3d07e88310a7ded58d8037c95ffd",
    "dpgvae": "8f7eb1af70f1fef995b02786e85262e313fcda43dcb7e7ec331de81104aab7f4",
    "gap": "d7e0e3f0b7f1e21815e7f9391fcaaed90020c2c761c71be9bb42ac3a2a0e8689",
    "progap": "30ecc69dc32977989f4b5a479248067dc6c1bbb661a7859974e744d766e8a20c",
}


@pytest.fixture(scope="module")
def graph():
    return load_dataset("smallworld", num_nodes=60, seed=2)


class TestRegistry:
    def test_all_paper_methods_registered(self):
        assert set(PAPER_METHOD_NAMES) <= set(available_methods())

    def test_get_method_normalises_and_resolves_aliases(self):
        assert get_method(" SE-PrivGEmb-DW ").name == "se_privgemb_dw"
        assert get_method("se_privgemb_deepwalk").name == "se_privgemb_dw"
        assert get_method("se_gemb_degree").name == "se_gemb_deg"

    def test_get_method_accepts_spec_passthrough(self):
        spec = get_method("gap")
        assert get_method(spec) is spec

    def test_unknown_method_lists_available_with_hint(self):
        with pytest.raises(ConfigurationError) as excinfo:
            get_method("se_privgemb_dvv")
        message = str(excinfo.value)
        assert "did you mean 'se_privgemb_dw'" in message
        for name in PAPER_METHOD_NAMES:
            assert name in message

    def test_private_flags_are_structured_fields(self):
        assert get_method("se_privgemb_dw").private
        assert get_method("gap").private
        assert not get_method("se_gemb_dw").private
        assert not get_method("se_gemb_deg").private

    def test_proximity_is_a_structured_field(self):
        assert get_method("se_privgemb_dw").proximity == "deepwalk"
        assert get_method("se_privgemb_deg").proximity == "degree"
        assert get_method("dpggan").proximity is None

    def test_make_proximity_honours_deepwalk_window(self):
        measure = get_method("se_gemb_dw").make_proximity(deepwalk_window=9)
        assert measure.window_size == 9
        assert get_method("se_gemb_deg").make_proximity(deepwalk_window=9) is not None

    def test_register_rejects_duplicates_without_overwrite(self):
        with pytest.raises(ConfigurationError):
            register(get_method("gap"))

    def test_register_rejects_alias_hijacking_existing_method(self):
        from dataclasses import replace

        hijacker = replace(get_method("progap"), name="totally_new_method")
        with pytest.raises(ConfigurationError, match="'gap'"):
            register(hijacker, aliases=("gap",))
        # the attempted hijack must not leak a dangling alias either
        assert get_method("gap").name == "gap"

    def test_canonical_names_always_beat_aliases(self):
        from repro.models import registry as registry_module

        # even a directly-planted alias cannot shadow a registered method
        registry_module._ALIASES["gap"] = "progap"
        try:
            assert get_method("gap").name == "gap"
        finally:
            registry_module._ALIASES.pop("gap", None)

    def test_spec_perturbation_default_reaches_the_runner(self, graph):
        from dataclasses import replace

        from repro.models import registry as registry_module

        naive_spec = replace(
            get_method("se_privgemb_deg"), name="se_privgemb_deg_naive_test",
            perturbation="naive",
        )
        registry_module._REGISTRY["se_privgemb_deg_naive_test"] = naive_spec
        try:
            model = embed_with_method(
                "se_privgemb_deg_naive_test",
                graph,
                FAST_TRAINING,
                FAST_PRIVACY,
                seed=0,
                return_model=True,
            )
            assert model.perturbation.name == "naive"  # spec default, not "nonzero"
            explicit = embed_with_method(
                "se_privgemb_deg_naive_test",
                graph,
                FAST_TRAINING,
                FAST_PRIVACY,
                seed=0,
                perturbation="nonzero",
                return_model=True,
            )
            assert explicit.perturbation.name == "nonzero"  # explicit still wins
        finally:
            registry_module._REGISTRY.pop("se_privgemb_deg_naive_test", None)

    def test_register_custom_method_and_build(self, graph):
        from repro.models import registry as registry_module

        spec = register(
            MethodSpec(
                name="se_gemb_jaccard_test",
                embedder="repro.embedding.trainer:SEGEmbTrainer",
                proximity="jaccard",
            ),
            overwrite=True,
        )
        try:
            model = spec.build(FAST_TRAINING, seed=0).fit(graph)
            assert model.embeddings_.shape == (graph.num_nodes, FAST_TRAINING.embedding_dim)
            assert embed_with_method(
                "se_gemb_jaccard_test", graph, FAST_TRAINING, FAST_PRIVACY, seed=0
            ).shape == (graph.num_nodes, FAST_TRAINING.embedding_dim)
        finally:
            registry_module._REGISTRY.pop("se_gemb_jaccard_test", None)

    def test_fingerprint_pins(self):
        # keeps the content addresses of stored sweep cells stable; see the
        # comment on METHOD_FINGERPRINT_PINS before touching this
        for name, expected in METHOD_FINGERPRINT_PINS.items():
            assert get_method(name).fingerprint() == expected, name

    def test_fingerprint_changes_with_definition(self):
        spec = get_method("se_privgemb_dw")
        from dataclasses import replace

        assert replace(spec, perturbation="naive").fingerprint() != spec.fingerprint()
        assert replace(spec, private=False).fingerprint() != spec.fingerprint()


class TestBuildAndFit:
    @pytest.mark.parametrize("method", PAPER_METHOD_NAMES)
    def test_every_method_fits_through_the_registry(self, method, graph):
        model = get_method(method).build(FAST_TRAINING, FAST_PRIVACY, seed=0).fit(graph)
        assert model.is_fitted_
        assert model.embeddings_.shape == (graph.num_nodes, FAST_TRAINING.embedding_dim)
        assert np.all(np.isfinite(model.embeddings_))
        assert model.dataset_fingerprint_ == graph.content_fingerprint()
        spec = get_method(method)
        # every private method reports the budget consumed: the SE trainers
        # via their accountant snapshot, the calibrated baselines as their
        # configured target (best_alpha == steps == 0)
        assert (model.result_.privacy_spent is not None) == spec.private
        if spec.private:
            assert model.result_.privacy_spent.epsilon <= FAST_PRIVACY.epsilon + 1e-9
        if spec.proximity is not None:
            assert model.proximity_fingerprint_ is not None

    def test_fit_rejects_non_graph(self):
        model = get_method("gap").build(FAST_TRAINING, FAST_PRIVACY, seed=0)
        with pytest.raises(ConfigurationError):
            model.fit("not a graph")

    def test_unfitted_accessors_raise(self):
        model = get_method("se_gemb_deg").build(FAST_TRAINING, seed=0)
        with pytest.raises(TrainingError):
            _ = model.embeddings_
        with pytest.raises(TrainingError):
            _ = model.result_
        with pytest.raises(TrainingError):
            model.save("nowhere.npz")

    def test_refit_on_another_graph_after_proximity_override(self, graph):
        # a per-fit proximity= override must not stick to the estimator: the
        # next fit on a different graph resolves that graph's own matrix
        other = load_dataset("smallworld", num_nodes=40, seed=9)
        model = get_method("se_gemb_deg").build(FAST_TRAINING, seed=0)
        precomputed = get_method("se_gemb_deg").make_proximity().compute(graph)
        model.fit(graph, proximity=precomputed)
        model.fit(other)  # |V| differs; a stale override would blow up here
        assert model.embeddings_.shape == (other.num_nodes, FAST_TRAINING.embedding_dim)
        np.testing.assert_array_equal(
            model.embeddings_,
            get_method("se_gemb_deg").build(FAST_TRAINING, seed=0).fit(other).embeddings_,
        )

    def test_build_matches_embed_with_method(self, graph):
        direct = (
            get_method("se_privgemb_deg")
            .build(FAST_TRAINING, FAST_PRIVACY, seed=0)
            .fit(graph, rng=np.random.default_rng(7))
        )
        runner = embed_with_method(
            "se_privgemb_deg",
            graph,
            FAST_TRAINING,
            FAST_PRIVACY,
            seed=np.random.default_rng(7),
        )
        np.testing.assert_array_equal(direct.embeddings_, runner)


class TestArtifacts:
    @pytest.mark.parametrize("method", PAPER_METHOD_NAMES)
    def test_save_load_roundtrip_bit_exact(self, method, graph, tmp_path):
        model = get_method(method).build(FAST_TRAINING, FAST_PRIVACY, seed=0).fit(graph)
        path = tmp_path / f"{method}.npz"
        model.save(path)
        loaded = Embedder.load(path)
        assert type(loaded) is type(model)
        assert loaded.is_fitted_
        np.testing.assert_array_equal(loaded.embeddings_, model.embeddings_)
        assert loaded.dataset_fingerprint_ == model.dataset_fingerprint_
        assert loaded.proximity_fingerprint_ == model.proximity_fingerprint_
        assert loaded.result_.epochs_run == model.result_.epochs_run
        assert loaded.result_.losses == model.result_.losses
        assert loaded.result_.privacy_spent == model.result_.privacy_spent
        assert loaded.spec.name == get_method(method).name

    def test_load_replays_build_overrides(self, graph, tmp_path):
        # a reloaded estimator must be *configured* like the saved one,
        # not just carry its arrays: constructor overrides and the
        # deepwalk window travel through the artifact
        path = tmp_path / "dpggan.npz"
        get_method("dpggan").build(
            FAST_TRAINING, FAST_PRIVACY, seed=0, hidden_dim=128
        ).fit(graph).save(path)
        assert Embedder.load(path).hidden_dim == 128

        path = tmp_path / "se_gemb_dw.npz"
        get_method("se_gemb_dw").build(
            FAST_TRAINING, seed=0, deepwalk_window=9
        ).fit(graph).save(path)
        assert Embedder.load(path).proximity.window_size == 9

    def test_baselines_report_calibrated_budget_as_spent(self, graph):
        model = get_method("gap").build(FAST_TRAINING, FAST_PRIVACY, seed=0).fit(graph)
        spent = model.result_.privacy_spent
        assert spent is not None
        assert spent.epsilon == FAST_PRIVACY.epsilon
        assert spent.delta == FAST_PRIVACY.delta
        assert spent.best_alpha == 0.0 and spent.steps == 0  # no accountant curve

    def test_baseline_refit_is_deterministic_and_rng_override_does_not_leak(self, graph):
        model = get_method("dpgvae").build(FAST_TRAINING, FAST_PRIVACY, seed=7)
        first = model.fit(graph).embeddings_.copy()
        model.fit(graph, rng=np.random.default_rng(123))  # per-fit override
        again = model.fit(graph).embeddings_  # back to the stored seed
        np.testing.assert_array_equal(first, again)

    def test_load_preserves_privacy_spent_metadata(self, graph, tmp_path):
        model = (
            get_method("se_privgemb_deg").build(FAST_TRAINING, FAST_PRIVACY, seed=0).fit(graph)
        )
        path = tmp_path / "model.npz"
        model.save(path)
        spent = Embedder.load(path).result_.privacy_spent
        assert spent is not None
        assert spent.epsilon == model.result_.privacy_spent.epsilon
        assert spent.steps == model.result_.privacy_spent.steps

    def test_typed_load_rejects_other_methods(self, graph, tmp_path):
        path = tmp_path / "gap.npz"
        get_method("gap").build(FAST_TRAINING, FAST_PRIVACY, seed=0).fit(graph).save(path)
        with pytest.raises(ArtifactError):
            SEPrivGEmbTrainer.load(path)
        assert isinstance(GAP.load(path), GAP)

    def test_registry_drift_invalidates_artifact(self, graph, tmp_path, monkeypatch):
        path = tmp_path / "model.npz"
        get_method("se_gemb_deg").build(FAST_TRAINING, seed=0).fit(graph).save(path)
        from dataclasses import replace
        from repro.models import registry as registry_module

        drifted = replace(get_method("se_gemb_deg"), proximity="jaccard")
        monkeypatch.setitem(registry_module._REGISTRY, "se_gemb_deg", drifted)
        with pytest.raises(ArtifactError):
            Embedder.load(path)

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path.open("wb"), embeddings=np.zeros((2, 2)))
        with pytest.raises(ArtifactError):
            Embedder.load(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ArtifactError):
            Embedder.load(tmp_path / "absent.npz")

    def test_corrupt_artifact_rejected(self, graph, tmp_path):
        path = tmp_path / "model.npz"
        get_method("gap").build(FAST_TRAINING, FAST_PRIVACY, seed=0).fit(graph).save(path)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(ArtifactError):
            Embedder.load(path)

    def test_raw_artifact_io_roundtrip(self, tmp_path):
        path = tmp_path / "raw.npz"
        arrays = {"embeddings": np.arange(6, dtype=float).reshape(2, 3)}
        save_artifact(path, arrays, {"method": None, "custom": [1, 2]})
        loaded_arrays, metadata = load_artifact(path)
        np.testing.assert_array_equal(loaded_arrays["embeddings"], arrays["embeddings"])
        assert metadata["custom"] == [1, 2]
        assert metadata["format_version"] >= 1

    def test_save_after_legacy_train_also_works(self, graph, tmp_path):
        with pytest.warns(DeprecationWarning):
            trainer = SEGEmbTrainer(graph, DegreeProximity(), config=FAST_TRAINING, seed=0)
        trainer._spec = get_method("se_gemb_deg")
        trainer.train()
        path = tmp_path / "legacy.npz"
        trainer.save(path)
        np.testing.assert_array_equal(
            Embedder.load(path).embeddings_, trainer.embeddings_
        )


class TestDeprecationShims:
    def test_legacy_constructor_warns_and_matches_fit(self, graph):
        with pytest.warns(DeprecationWarning):
            old = SEGEmbTrainer(graph, DegreeProximity(), config=FAST_TRAINING, seed=3).train()
        new = SEGEmbTrainer(DegreeProximity(), config=FAST_TRAINING, seed=3).fit(graph)
        np.testing.assert_array_equal(old.embeddings, new.embeddings_)

    def test_legacy_private_constructor_warns_and_matches_fit(self, graph):
        kwargs = dict(training_config=FAST_TRAINING, privacy_config=FAST_PRIVACY, seed=3)
        with pytest.warns(DeprecationWarning):
            old = SEPrivGEmbTrainer(graph, DegreeProximity(), **kwargs).train()
        new = SEPrivGEmbTrainer(DegreeProximity(), **kwargs).fit(graph)
        np.testing.assert_array_equal(old.embeddings, new.embeddings_)
        assert old.privacy_spent == new.result_.privacy_spent

    def test_method_names_module_attribute_is_shimmed(self):
        with pytest.warns(DeprecationWarning):
            from repro.experiments.runner import METHOD_NAMES
        assert set(PAPER_METHOD_NAMES) <= set(METHOD_NAMES)

    def test_train_without_graph_raises(self):
        trainer = SEGEmbTrainer(DegreeProximity(), config=FAST_TRAINING, seed=0)
        with pytest.raises(TrainingError):
            trainer.train()

    def test_boolean_cache_policy_warns(self, graph):
        with pytest.warns(DeprecationWarning, match="boolean proximity_cache"):
            embeddings = embed_with_method(
                "se_gemb_deg",
                graph,
                FAST_TRAINING,
                FAST_PRIVACY,
                seed=0,
                proximity_cache=False,
            )
        assert embeddings.shape[0] == graph.num_nodes

    def test_none_cache_policy_warns(self, graph):
        with pytest.warns(DeprecationWarning, match="proximity_cache=None"):
            embed_with_method(
                "se_gemb_deg",
                graph,
                FAST_TRAINING,
                FAST_PRIVACY,
                seed=0,
                proximity_cache=None,
            )


class TestCachePolicyContract:
    def test_off_bypasses_the_default_cache(self, graph):
        from repro.proximity.cache import default_proximity_cache

        cache = default_proximity_cache()
        before = (cache.hits, cache.misses)
        embed_with_method(
            "se_gemb_deg", graph, FAST_TRAINING, FAST_PRIVACY, seed=0, proximity_cache="off"
        )
        assert (cache.hits, cache.misses) == before

    def test_explicit_cache_instance_is_used(self, graph):
        cache = ProximityCache()
        embed_with_method(
            "se_gemb_deg", graph, FAST_TRAINING, FAST_PRIVACY, seed=0, proximity_cache=cache
        )
        assert cache.misses == 1
        embed_with_method(
            "se_gemb_deg", graph, FAST_TRAINING, FAST_PRIVACY, seed=0, proximity_cache=cache
        )
        assert cache.hits >= 1

    def test_invalid_policy_rejected(self, graph):
        with pytest.raises(ConfigurationError):
            embed_with_method(
                "se_gemb_deg",
                graph,
                FAST_TRAINING,
                FAST_PRIVACY,
                seed=0,
                proximity_cache="sometimes",
            )


class TestReturnModel:
    def test_return_model_gives_fitted_estimator(self, graph):
        model = embed_with_method(
            "se_privgemb_deg",
            graph,
            FAST_TRAINING,
            FAST_PRIVACY,
            seed=0,
            return_model=True,
        )
        assert isinstance(model, Embedder)
        assert model.is_fitted_
        assert model.result_.privacy_spent is not None
        assert model.spec.name == "se_privgemb_deg"

    def test_return_model_roundtrips_through_save(self, graph, tmp_path):
        model = embed_with_method(
            "progap", graph, FAST_TRAINING, FAST_PRIVACY, seed=0, return_model=True
        )
        path = tmp_path / "progap.npz"
        model.save(path)
        np.testing.assert_array_equal(Embedder.load(path).embeddings_, model.embeddings_)


class TestSeedValidation:
    def test_ensure_rng_rejects_offending_types(self):
        for bad in ("42", 1.5, [1, 2], object()):
            with pytest.raises(ConfigurationError) as excinfo:
                ensure_rng(bad)
            assert type(bad).__name__ in str(excinfo.value)

    def test_ensure_rng_accepts_valid_types(self):
        assert isinstance(ensure_rng(None), np.random.Generator)
        assert isinstance(ensure_rng(np.int64(3)), np.random.Generator)
        assert isinstance(ensure_rng(np.random.SeedSequence(1)), np.random.Generator)

    def test_trainer_seed_validation_names_the_type(self, graph):
        trainer = SEGEmbTrainer(DegreeProximity(), config=FAST_TRAINING, seed="bad-seed")
        with pytest.raises(ConfigurationError, match="str"):
            trainer.fit(graph)
        with pytest.raises(ConfigurationError, match="float"):
            get_method("gap").build(FAST_TRAINING, FAST_PRIVACY, seed=0.5)

    def test_repeat_streams_rejects_bad_seed(self):
        from repro.utils.rng import repeat_streams

        with pytest.raises(ConfigurationError):
            repeat_streams("7", 2)


class TestFitResult:
    def test_roundtrip_through_dict(self):
        from repro.privacy.accountant import PrivacySpent

        result = FitResult(
            losses=[1.0, 0.5],
            epochs_run=2,
            stopped_early=True,
            privacy_spent=PrivacySpent(epsilon=1.2, delta=1e-5, best_alpha=8.0, steps=2),
        )
        assert FitResult.from_dict(result.to_dict()) == result
        assert result.final_loss == 0.5
        assert np.isnan(FitResult().final_loss)
