"""Tests for the numpy NN substrate (layers, losses, GCN)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConfigurationError
from repro.nn import (
    Activation,
    DenseLayer,
    GCNEncoder,
    GCNLayer,
    Sequential,
    binary_cross_entropy,
    binary_cross_entropy_grad,
    mse,
    mse_grad,
    normalized_adjacency,
)


def numerical_gradient(f, x, eps=1e-6):
    """Central-difference gradient of a scalar function of an array."""
    grad = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = x[idx]
        x[idx] = original + eps
        plus = f(x)
        x[idx] = original - eps
        minus = f(x)
        x[idx] = original
        grad[idx] = (plus - minus) / (2 * eps)
        it.iternext()
    return grad


class TestDenseLayer:
    def test_forward_shape_and_value(self):
        layer = DenseLayer(3, 2, seed=0)
        layer.weight = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        layer.bias = np.array([0.5, -0.5])
        out = layer.forward(np.array([[1.0, 2.0, 3.0]]))
        np.testing.assert_allclose(out, [[1 + 3 + 0.5, 2 + 3 - 0.5]])

    def test_backward_matches_numerical_gradient(self, rng):
        layer = DenseLayer(4, 3, seed=1)
        x = rng.normal(size=(2, 4))
        target = rng.normal(size=(2, 3))

        def loss_for_weight(w):
            saved = layer.weight
            layer.weight = w
            out = layer.forward(x)
            layer.weight = saved
            return float(np.sum((out - target) ** 2))

        out = layer.forward(x)
        layer.zero_grad()
        layer.backward(2.0 * (out - target))
        numeric = numerical_gradient(loss_for_weight, layer.weight.copy())
        np.testing.assert_allclose(layer.weight_grad, numeric, atol=1e-5)

    def test_input_gradient_matches_numerical(self, rng):
        layer = DenseLayer(3, 2, seed=2)
        x = rng.normal(size=(1, 3))
        target = rng.normal(size=(1, 2))

        def loss_for_input(xx):
            return float(np.sum((layer.forward(xx) - target) ** 2))

        out = layer.forward(x)
        grad_in = layer.backward(2.0 * (out - target))
        numeric = numerical_gradient(loss_for_input, x.copy())
        np.testing.assert_allclose(grad_in, numeric, atol=1e-5)

    def test_backward_before_forward_raises(self):
        layer = DenseLayer(2, 2, seed=0)
        with pytest.raises(ConfigurationError):
            layer.backward(np.ones((1, 2)))

    def test_apply_gradients_moves_parameters(self):
        layer = DenseLayer(2, 2, seed=0)
        before = layer.weight.copy()
        layer.forward(np.ones((1, 2)))
        layer.backward(np.ones((1, 2)))
        layer.apply_gradients(0.1)
        assert not np.allclose(layer.weight, before)

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            DenseLayer(0, 3)


class TestActivation:
    @pytest.mark.parametrize("kind", ["relu", "sigmoid", "tanh", "identity"])
    def test_backward_matches_numerical(self, kind, rng):
        act = Activation(kind)
        x = rng.normal(size=(2, 3))

        def scalar_loss(xx):
            return float(np.sum(Activation(kind).forward(xx) ** 2))

        out = act.forward(x)
        grad = act.backward(2.0 * out)
        numeric = numerical_gradient(scalar_loss, x.copy())
        np.testing.assert_allclose(grad, numeric, atol=1e-5)

    def test_relu_zeroes_negatives(self):
        act = Activation("relu")
        np.testing.assert_allclose(act.forward(np.array([-1.0, 2.0])), [0.0, 2.0])

    def test_unknown_activation_raises(self):
        with pytest.raises(ConfigurationError):
            Activation("swish")


class TestSequential:
    def test_forward_backward_chain(self, rng):
        model = Sequential(DenseLayer(4, 8, seed=0), Activation("tanh"), DenseLayer(8, 1, seed=1))
        x = rng.normal(size=(3, 4))
        out = model.forward(x)
        assert out.shape == (3, 1)
        grad_in = model.backward(np.ones_like(out))
        assert grad_in.shape == x.shape
        assert len(model.parameters()) == 4
        assert len(model.gradients()) == 4

    def test_training_reduces_loss(self, rng):
        model = Sequential(DenseLayer(2, 8, seed=0), Activation("tanh"), DenseLayer(8, 1, seed=1))
        x = rng.normal(size=(32, 2))
        y = x[:, :1] * 0.8 - x[:, 1:] * 0.3
        first_loss = None
        for _ in range(300):
            model.zero_grad()
            out = model.forward(x)
            loss = mse(out, y)
            if first_loss is None:
                first_loss = loss
            model.backward(mse_grad(out, y))
            model.apply_gradients(0.05)
        assert mse(model.forward(x), y) < first_loss * 0.5

    def test_empty_sequential_raises(self):
        with pytest.raises(ConfigurationError):
            Sequential()


class TestLosses:
    def test_bce_known_value(self):
        preds = np.array([0.9, 0.1])
        targets = np.array([1.0, 0.0])
        expected = -np.mean([np.log(0.9), np.log(0.9)])
        assert binary_cross_entropy(preds, targets) == pytest.approx(expected)

    def test_bce_grad_matches_numerical(self, rng):
        preds = rng.uniform(0.05, 0.95, size=6)
        targets = (rng.random(6) > 0.5).astype(float)
        numeric = numerical_gradient(lambda p: binary_cross_entropy(p, targets), preds.copy())
        np.testing.assert_allclose(binary_cross_entropy_grad(preds, targets), numeric, atol=1e-5)

    def test_mse_grad_matches_numerical(self, rng):
        preds = rng.normal(size=5)
        targets = rng.normal(size=5)
        numeric = numerical_gradient(lambda p: mse(p, targets), preds.copy())
        np.testing.assert_allclose(mse_grad(preds, targets), numeric, atol=1e-6)


class TestGCN:
    def test_normalized_adjacency_properties(self, small_graph):
        norm = normalized_adjacency(small_graph)
        n = small_graph.num_nodes
        assert norm.shape == (n, n)
        np.testing.assert_allclose(norm, norm.T, atol=1e-10)
        eigenvalues = np.linalg.eigvalsh(norm)
        assert eigenvalues.max() <= 1.0 + 1e-8

    def test_gcn_layer_output_shape(self, small_graph, rng):
        norm = normalized_adjacency(small_graph)
        features = rng.normal(size=(small_graph.num_nodes, 6))
        layer = GCNLayer(6, 4, seed=0)
        out = layer.forward(norm, features)
        assert out.shape == (small_graph.num_nodes, 4)

    def test_encoder_stacks_layers(self, small_graph, rng):
        norm = normalized_adjacency(small_graph)
        features = rng.normal(size=(small_graph.num_nodes, 8))
        encoder = GCNEncoder([8, 16, 4], seed=0)
        out = encoder.encode(norm, features)
        assert out.shape == (small_graph.num_nodes, 4)

    def test_aggregation_hook_is_applied(self, small_graph, rng):
        norm = normalized_adjacency(small_graph)
        features = rng.normal(size=(small_graph.num_nodes, 8))
        encoder = GCNEncoder([8, 4], seed=0)
        calls = []

        def hook(agg):
            calls.append(agg.shape)
            return agg * 0.0

        out = encoder.encode(norm, features, aggregation_hook=hook)
        assert len(calls) == 1
        # zeroed aggregation through a linear layer gives only the bias (zeros)
        np.testing.assert_allclose(out, np.zeros_like(out), atol=1e-12)

    def test_encoder_rejects_short_layer_list(self):
        with pytest.raises(ConfigurationError):
            GCNEncoder([8])
