"""Tests for the parallel, resumable experiment orchestrator."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro import PrivacyConfig, TrainingConfig
from repro.exceptions import OrchestrationError
from repro.experiments import ExperimentSettings, RunStore, execute, table_batch_size
from repro.experiments.orchestrator import (
    RunSpec,
    cell_seed_sequence,
    dataset_fingerprint,
    register_kind,
    run_spec,
    specs_for_settings,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

FAST_TRAINING = TrainingConfig(
    embedding_dim=8, batch_size=24, learning_rate=0.1, negative_samples=3, epochs=4
)
FAST_PRIVACY = PrivacyConfig(epsilon=2.0)

TINY = ExperimentSettings(
    datasets=("smallworld",),
    dataset_scale=0.5,
    repeats=1,
    training=TrainingConfig(
        embedding_dim=8, batch_size=24, learning_rate=0.1, negative_samples=3, epochs=4
    ),
    epsilons=(0.5, 3.5),
    seed=3,
)


def _sleep_spec(index: int, duration: float = 0.01) -> RunSpec:
    return RunSpec(
        kind="sleep",
        method="sleep",
        dataset="synthetic",
        dataset_fingerprint="",
        training=FAST_TRAINING,
        privacy=FAST_PRIVACY,
        repeats=1,
        seed=index,
        options=(("duration", duration),),
        metric="sleep",
    )


def _strucequ_spec(**overrides) -> RunSpec:
    spec = specs_for_settings("strucequ", "se_privgemb_deg", "smallworld", TINY)
    return spec.with_updates(**overrides) if overrides else spec


class TestRunSpec:
    def test_fingerprint_is_stable_and_content_addressed(self):
        assert _strucequ_spec().fingerprint() == _strucequ_spec().fingerprint()
        assert len(_strucequ_spec().fingerprint()) == 64

    def test_fingerprint_changes_with_every_result_relevant_field(self):
        base = _strucequ_spec()
        variants = [
            base.with_updates(method="se_privgemb_dw"),
            base.with_updates(seed=base.seed + 1),
            base.with_updates(repeats=base.repeats + 1),
            base.with_updates(perturbation="naive"),
            base.with_updates(training=base.training.with_updates(batch_size=48)),
            base.with_updates(privacy=base.privacy.with_epsilon(1.0)),
            base.with_updates(options=(("x", 1),)),
            base.with_updates(dataset_fingerprint="f" * 32),
        ]
        fingerprints = {base.fingerprint()} | {v.fingerprint() for v in variants}
        assert len(fingerprints) == len(variants) + 1

    def test_fingerprint_pin(self):
        """Content-address stability pin.

        This hash is the RunStore key of a fixed cell.  If it changes,
        every previously stored sweep result is (intentionally) orphaned —
        the registry redesign did exactly that once, moving the method
        field from a plain string to the MethodSpec payload.  Bump the pin
        only together with a deliberate, documented invalidation.
        """
        spec = RunSpec(
            kind="strucequ",
            method="se_privgemb_dw",
            dataset="smallworld",
            dataset_fingerprint="0" * 64,
            training=FAST_TRAINING,
            privacy=FAST_PRIVACY,
            repeats=1,
            seed=0,
        )
        assert spec.fingerprint() == (
            "ccca6ec778dc691ec302520c7c9fae4e73427a9e10a198afab2b4efbe3e5a605"
        )

    def test_fingerprint_hashes_the_method_definition_not_the_label(self):
        # registered methods contribute their full MethodSpec payload
        payload = _strucequ_spec().describe()["method"]
        assert isinstance(payload, dict)
        assert payload["proximity"] == "degree"
        assert payload["private"] is True
        # unregistered labels (ablation variants, sleep cells) stay strings
        assert _sleep_spec(0).describe()["method"] == "sleep"

    def test_fingerprint_changes_when_method_definition_drifts(self, monkeypatch):
        from dataclasses import replace

        from repro.models import get_method
        from repro.models import registry as registry_module

        base = _strucequ_spec()
        before = base.fingerprint()
        drifted = replace(get_method("se_privgemb_deg"), perturbation="naive")
        monkeypatch.setitem(registry_module._REGISTRY, "se_privgemb_deg", drifted)
        assert base.fingerprint() != before

    def test_group_key_by_dataset_and_proximity(self):
        dw = _strucequ_spec(method="se_privgemb_dw")
        deg = _strucequ_spec(method="se_privgemb_deg")
        baseline = _strucequ_spec(method="gap")
        assert dw.group_key() != deg.group_key()
        assert dw.group_key()[0] == deg.group_key()[0] == baseline.group_key()[0]
        assert dw.group_key()[1] == "deepwalk:5"
        assert deg.group_key()[1] == "degree"
        assert baseline.group_key()[1] == "none"

    def test_group_key_needs_no_name_suffix(self, monkeypatch):
        # a registered method named without the _dw/_deg convention still
        # groups by its structured proximity field
        from dataclasses import replace

        from repro.models import get_method
        from repro.models import registry as registry_module

        spec = replace(get_method("se_gemb_deg"), name="my_custom_method")
        monkeypatch.setitem(registry_module._REGISTRY, "my_custom_method", spec)
        cell = _strucequ_spec(method="my_custom_method")
        assert cell.group_key()[1] == "degree"

    def test_evaluation_stream_shared_across_cells_of_one_graph(self):
        # cross-cell comparisons use common random numbers: every cell on
        # the same (graph, base seed) scores on the identical pair sample,
        # while the training streams stay cell-namespaced
        from repro.experiments.orchestrator import evaluation_seed_sequence

        draw = lambda ss: np.random.default_rng(ss).integers(0, 2**31, size=4).tolist()
        a = _strucequ_spec(method="se_privgemb_dw")
        b = _strucequ_spec(method="se_privgemb_deg", perturbation="naive")
        assert draw(evaluation_seed_sequence(a)) == draw(evaluation_seed_sequence(b))
        assert draw(cell_seed_sequence(a)) != draw(cell_seed_sequence(b))
        other_seed = _strucequ_spec(seed=TINY.seed + 1)
        assert draw(evaluation_seed_sequence(a)) != draw(evaluation_seed_sequence(other_seed))

    def test_cell_seed_sequences_are_namespaced(self):
        a = cell_seed_sequence(_strucequ_spec(seed=0))
        b = cell_seed_sequence(_strucequ_spec(seed=1))
        same_a = cell_seed_sequence(_strucequ_spec(seed=0))
        draw = lambda ss: np.random.default_rng(ss).integers(0, 2**31, size=4).tolist()
        assert draw(a) == draw(same_a)
        assert draw(a) != draw(b)

    def test_dataset_fingerprint_matches_graph(self):
        from repro.graph import load_dataset

        fp = dataset_fingerprint("smallworld", scale=0.5, seed=3)
        assert fp == load_dataset("smallworld", scale=0.5, seed=3).content_fingerprint()

    def test_dataset_drift_is_detected(self):
        spec = _strucequ_spec(dataset_fingerprint="0" * 32)
        with pytest.raises(OrchestrationError):
            run_spec(spec)


class TestExecute:
    def test_empty_sweep(self):
        report = execute([])
        assert report.total == 0 and report.computed == 0 and report.reused == 0

    def test_rejects_bad_worker_count(self):
        with pytest.raises(OrchestrationError):
            execute([_sleep_spec(0)], workers=0)

    def test_unknown_kind_raises(self):
        with pytest.raises(OrchestrationError):
            run_spec(_sleep_spec(0).with_updates(kind="nope"))

    def test_register_kind_extends_dispatch(self):
        register_kind("echo_seed", lambda spec: {"metric": "echo", "mean": float(spec.seed), "std": 0.0})
        report = execute([_sleep_spec(5).with_updates(kind="echo_seed")])
        assert report.results[0]["mean"] == 5.0

    def test_serial_and_parallel_results_are_identical(self):
        specs = [
            _strucequ_spec(),
            _strucequ_spec(method="se_privgemb_dw"),
            _strucequ_spec(seed=TINY.seed + 1),
            _strucequ_spec(perturbation="naive"),
        ]
        serial = execute(specs, workers=1)
        parallel = execute(specs, workers=2)
        assert serial.results == parallel.results
        assert parallel.workers == 2

    def test_results_align_with_spec_order(self):
        register_kind("echo_seed", lambda spec: {"metric": "echo", "mean": float(spec.seed), "std": 0.0})
        specs = [_sleep_spec(i).with_updates(kind="echo_seed") for i in range(7)]
        report = execute(specs, workers=3)
        assert [r["mean"] for r in report.results] == [float(i) for i in range(7)]

    def test_store_roundtrip_and_resume(self, tmp_path):
        specs = [_sleep_spec(i) for i in range(4)]
        first = execute(specs, store=tmp_path)
        assert first.computed == 4 and first.reused == 0
        second = execute(specs, store=tmp_path)
        assert second.computed == 0 and second.reused == 4
        assert second.results == first.results

    def test_killed_sweep_resumes_without_recomputation(self, tmp_path):
        """A sweep that died after completing a prefix recomputes only the rest."""
        specs = [_sleep_spec(i) for i in range(6)]
        killed = execute(specs[:2], store=tmp_path)  # the part that finished
        assert killed.computed == 2
        resumed = execute(specs, workers=2, store=tmp_path)
        assert resumed.reused == 2
        assert resumed.computed == 4
        assert execute(specs, store=tmp_path).computed == 0

    def test_parallel_workers_publish_into_disk_store(self, tmp_path):
        specs = [_sleep_spec(i) for i in range(4)]
        execute(specs, workers=2, store=tmp_path)
        store = RunStore(tmp_path)
        assert len(store) == 4
        for spec in specs:
            assert store.get(spec.fingerprint())["metric"] == "sleep"

    def test_memory_store_reuse_with_parallel_workers(self):
        store = RunStore()
        specs = [_sleep_spec(i) for i in range(3)]
        execute(specs, workers=2, store=store)
        report = execute(specs, workers=2, store=store)
        assert report.reused == 3 and report.computed == 0


class TestSweepIntegration:
    def test_table_sweep_serial_matches_parallel_and_resumes(self, tmp_path):
        serial = table_batch_size(TINY, batch_sizes=(16, 24))
        parallel = table_batch_size(TINY, batch_sizes=(16, 24), workers=2, store=tmp_path)
        assert serial.rows == parallel.rows
        assert parallel.run_report.computed == 4
        resumed = table_batch_size(TINY, batch_sizes=(16, 24), workers=2, store=tmp_path)
        assert resumed.run_report.computed == 0
        assert resumed.run_report.reused == 4
        assert resumed.rows == serial.rows

    def test_run_report_attached_to_tables(self):
        table = table_batch_size(TINY, batch_sizes=(16,))
        assert table.run_report is not None
        assert table.run_report.total == len(table)


class TestCommandLine:
    def test_cli_run_and_resume(self, tmp_path):
        command = [
            sys.executable,
            "-m",
            "repro.experiments",
            "run",
            "--table",
            "2",
            "--smoke",
            "--workers",
            "2",
            "--epochs",
            "4",
            "--values",
            "16,24",
            "--store",
            str(tmp_path),
        ]
        env = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"}
        first = subprocess.run(
            command, capture_output=True, text=True, env=env, cwd=REPO_ROOT, timeout=300
        )
        assert first.returncode == 0, first.stderr
        assert "Table II" in first.stdout
        assert "computed=4" in first.stdout
        second = subprocess.run(
            command, capture_output=True, text=True, env=env, cwd=REPO_ROOT, timeout=300
        )
        assert second.returncode == 0, second.stderr
        assert "reused=4" in second.stdout
        assert "computed=0" in second.stdout

    def test_cli_list(self):
        env = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"}
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "list"],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "tables" in proc.stdout and "smallworld" in proc.stdout
        assert "se_privgemb_dw" in proc.stdout  # registry methods are listed

    def test_cli_unknown_method_lists_registry_with_hint(self):
        env = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"}
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.experiments",
                "run",
                "--figure",
                "3",
                "--smoke",
                "--methods",
                "se_privgemb_dvv",
            ],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
            timeout=120,
        )
        assert proc.returncode != 0
        assert "did you mean 'se_privgemb_dw'" in proc.stderr
        assert "available: se_privgemb_dw" in proc.stderr

    def test_cli_methods_rejected_outside_figures(self):
        env = {"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"}
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.experiments",
                "run",
                "--table",
                "2",
                "--smoke",
                "--methods",
                "gap",
            ],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
            timeout=120,
        )
        assert proc.returncode != 0
        assert "--methods only applies to --figure sweeps" in proc.stderr


class TestForkFallback:
    """Non-fork start methods degrade to serial instead of crashing."""

    def test_runtime_kind_falls_back_to_serial(self, monkeypatch):
        from repro.utils import mp as repro_mp

        monkeypatch.setattr(repro_mp, "start_method", lambda: "spawn")
        register_kind(
            "echo_seed_fallback",
            lambda spec: {"metric": "echo", "mean": float(spec.seed), "std": 0.0},
        )
        specs = [
            _sleep_spec(i).with_updates(kind="echo_seed_fallback") for i in range(3)
        ]
        with pytest.warns(RuntimeWarning, match="falling back to the serial path"):
            report = execute(specs, workers=2)
        assert report.workers == 1
        assert [r["mean"] for r in report.results] == [0.0, 1.0, 2.0]

    def test_importable_kinds_keep_the_pool(self, monkeypatch):
        from repro.utils import mp as repro_mp

        monkeypatch.setattr(repro_mp, "start_method", lambda: "spawn")
        # "sleep" is a _LAZY_KINDS entry: workers resolve it by import, so
        # the sweep is allowed to keep its pool even without fork
        report = execute([_sleep_spec(0), _sleep_spec(1)], workers=2)
        assert report.workers == 2
        assert report.computed == 2


class TestTrainWorkersThreading:
    def test_default_settings_leave_options_empty(self):
        spec = specs_for_settings("strucequ", "se_gemb_deg", "smallworld", TINY)
        assert spec.option("train_workers") is None

    def test_train_workers_recorded_when_set(self):
        settings = TINY.with_updates(train_workers=2)
        spec = specs_for_settings("strucequ", "se_gemb_deg", "smallworld", settings)
        assert spec.option("train_workers") == 2

    def test_default_fingerprint_unchanged_by_new_field(self):
        base = specs_for_settings("strucequ", "se_gemb_deg", "smallworld", TINY)
        same = specs_for_settings(
            "strucequ", "se_gemb_deg", "smallworld", TINY.with_updates(train_workers=1)
        )
        assert base.fingerprint() == same.fingerprint()

    def test_train_workers_changes_fingerprint(self):
        base = specs_for_settings("strucequ", "se_gemb_deg", "smallworld", TINY)
        hog = specs_for_settings(
            "strucequ", "se_gemb_deg", "smallworld", TINY.with_updates(train_workers=2)
        )
        assert base.fingerprint() != hog.fingerprint()

    def test_settings_validation(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            TINY.with_updates(train_workers=0)
