"""Tests for RDP curves, subsampling amplification and the accountants."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PrivacyError
from repro.privacy import (
    DEFAULT_ALPHA_GRID,
    MomentsAccountant,
    RdpAccountant,
    compose_rdp,
    dp_to_rdp_budget,
    gaussian_rdp,
    rdp_to_dp,
    subsampled_rdp,
)
from repro.privacy.subsampling import subsampled_gaussian_rdp_curve


class TestGaussianRdp:
    def test_linear_in_alpha(self):
        alphas = [2.0, 4.0, 8.0]
        curve = gaussian_rdp(5.0, alphas)
        np.testing.assert_allclose(curve, np.array(alphas) / 50.0)

    def test_more_noise_means_less_epsilon(self):
        low_noise = gaussian_rdp(1.0, [2.0])[0]
        high_noise = gaussian_rdp(10.0, [2.0])[0]
        assert high_noise < low_noise

    def test_rejects_invalid_inputs(self):
        with pytest.raises(PrivacyError):
            gaussian_rdp(0.0, [2.0])
        with pytest.raises(PrivacyError):
            gaussian_rdp(1.0, [0.5])
        with pytest.raises(PrivacyError):
            gaussian_rdp(1.0, [])


class TestComposition:
    def test_compose_sums_curves(self):
        a = np.array([0.1, 0.2])
        b = np.array([0.3, 0.4])
        np.testing.assert_allclose(compose_rdp([a, b]), [0.4, 0.6])

    def test_compose_rejects_mismatched_grids(self):
        with pytest.raises(PrivacyError):
            compose_rdp([np.array([0.1]), np.array([0.1, 0.2])])

    def test_compose_rejects_empty(self):
        with pytest.raises(PrivacyError):
            compose_rdp([])


class TestRdpToDp:
    def test_conversion_formula_single_alpha(self):
        eps, alpha = rdp_to_dp([1.0], [2.0], delta=1e-5)
        assert alpha == 2.0
        assert eps == pytest.approx(1.0 + np.log(1e5))

    def test_picks_minimising_alpha(self):
        alphas = [2.0, 10.0, 100.0]
        curve = [0.01 * a for a in alphas]
        eps, best = rdp_to_dp(curve, alphas, delta=1e-5)
        candidates = [c + np.log(1e5) / (a - 1) for c, a in zip(curve, alphas, strict=True)]
        assert eps == pytest.approx(min(candidates))
        assert best in alphas

    def test_budget_inverse_consistency(self):
        budget = dp_to_rdp_budget(2.0, 1e-5, [2.0, 50.0])
        # at alpha=2, almost nothing remains; at alpha=50, most of the budget does
        assert budget[0] == 0.0 or budget[0] < budget[1]

    def test_invalid_delta_raises(self):
        with pytest.raises(PrivacyError):
            rdp_to_dp([1.0], [2.0], delta=0.0)
        with pytest.raises(PrivacyError):
            dp_to_rdp_budget(1.0, 1.5)


class TestSubsampledRdp:
    def _gaussian(self, sigma):
        return lambda alpha: alpha / (2.0 * sigma**2)

    def test_amplification_reduces_epsilon(self):
        rdp_at = self._gaussian(5.0)
        full = rdp_at(4.0)
        amplified = subsampled_rdp(4.0, 0.01, rdp_at)
        assert amplified < full

    def test_no_subsampling_returns_base(self):
        rdp_at = self._gaussian(5.0)
        assert subsampled_rdp(3.0, 1.0, rdp_at) == pytest.approx(rdp_at(3.0))

    def test_monotone_in_sampling_rate(self):
        rdp_at = self._gaussian(5.0)
        small = subsampled_rdp(8.0, 0.001, rdp_at)
        large = subsampled_rdp(8.0, 0.1, rdp_at)
        assert small < large

    def test_never_exceeds_base_curve(self):
        rdp_at = self._gaussian(2.0)
        for alpha in (2.0, 4.0, 16.0, 64.0):
            assert subsampled_rdp(alpha, 0.3, rdp_at) <= rdp_at(alpha) + 1e-12

    def test_large_alpha_grid_is_finite(self):
        curve = subsampled_gaussian_rdp_curve(5.0, 0.1, DEFAULT_ALPHA_GRID)
        assert np.all(np.isfinite(curve))
        assert np.all(curve >= 0)

    def test_invalid_inputs_raise(self):
        rdp_at = self._gaussian(5.0)
        with pytest.raises(PrivacyError):
            subsampled_rdp(1.0, 0.1, rdp_at)
        with pytest.raises(PrivacyError):
            subsampled_rdp(2.0, 0.0, rdp_at)


class TestRdpAccountant:
    def test_epsilon_grows_with_steps(self):
        acc = RdpAccountant(noise_multiplier=5.0, sampling_rate=0.05)
        acc.step(10)
        eps_10 = acc.get_privacy_spent(1e-5).epsilon
        acc.step(90)
        eps_100 = acc.get_privacy_spent(1e-5).epsilon
        assert 0 < eps_10 < eps_100
        assert acc.steps == 100

    def test_zero_steps_zero_epsilon(self):
        acc = RdpAccountant(5.0, 0.1)
        spent = acc.get_privacy_spent(1e-5)
        assert spent.epsilon == 0.0
        assert spent.steps == 0

    def test_epsilon_after_matches_stepping(self):
        acc = RdpAccountant(5.0, 0.1)
        predicted = acc.epsilon_after(25, 1e-5)
        acc.step(25)
        assert acc.get_privacy_spent(1e-5).epsilon == pytest.approx(predicted)

    def test_max_steps_consistency(self):
        acc = RdpAccountant(5.0, 0.08)
        max_steps = acc.max_steps(3.5, 1e-5)
        assert max_steps > 0
        assert acc.epsilon_after(max_steps, 1e-5) <= 3.5
        assert acc.epsilon_after(max_steps + 1, 1e-5) > 3.5

    def test_max_steps_monotone_in_epsilon(self):
        acc = RdpAccountant(5.0, 0.08)
        budgets = [acc.max_steps(e, 1e-5) for e in (0.5, 1.5, 2.5, 3.5)]
        assert budgets == sorted(budgets)
        assert budgets[0] < budgets[-1]

    def test_would_exceed_and_reset(self):
        acc = RdpAccountant(5.0, 0.2)
        limit = acc.max_steps(0.5, 1e-5)
        acc.step(limit)
        assert acc.would_exceed(0.5, 1e-5)
        with pytest.warns(RuntimeWarning, match="discards"):
            acc.reset()
        assert acc.steps == 0
        assert not acc.would_exceed(0.5, 1e-5) or limit == 0

    def test_delta_after_monotone_in_steps(self):
        acc = RdpAccountant(5.0, 0.1)
        d1 = acc.delta_after(5, target_epsilon=1.0)
        d2 = acc.delta_after(50, target_epsilon=1.0)
        assert d1 <= d2

    def test_invalid_construction(self):
        with pytest.raises(PrivacyError):
            RdpAccountant(0.0, 0.1)
        with pytest.raises(PrivacyError):
            RdpAccountant(5.0, 1.5)


class TestMomentsAccountant:
    def test_epsilon_grows_with_steps(self):
        acc = MomentsAccountant(noise_multiplier=5.0, sampling_rate=0.05)
        acc.step(10)
        e10 = acc.get_epsilon(1e-5)
        acc.step(90)
        e100 = acc.get_epsilon(1e-5)
        assert 0 < e10 < e100

    def test_get_delta_inverse_relation(self):
        acc = MomentsAccountant(5.0, 0.1)
        acc.step(20)
        eps = acc.get_epsilon(1e-5)
        assert acc.get_delta(eps) <= 1e-5 * 1.01

    def test_max_steps_positive_and_consistent(self):
        acc = MomentsAccountant(5.0, 0.05)
        steps = acc.max_steps(1.0, 1e-5)
        assert steps >= 0
        if steps > 0:
            fresh = MomentsAccountant(5.0, 0.05)
            fresh.step(steps)
            assert fresh.get_epsilon(1e-5) <= 1.0

    def test_max_steps_shrinks_with_sampling_rate_and_budget(self):
        """Larger sampling rates or smaller budgets certify fewer MA steps.

        This is the mechanism behind the paper's observation that the
        DPGGAN/DPGVAE baselines converge prematurely at small budgets.
        """
        assert MomentsAccountant(5.0, 0.5).max_steps(1.0, 1e-5) <= MomentsAccountant(
            5.0, 0.05
        ).max_steps(1.0, 1e-5)
        assert MomentsAccountant(5.0, 0.2).max_steps(0.5, 1e-5) <= MomentsAccountant(
            5.0, 0.2
        ).max_steps(3.5, 1e-5)

    def test_invalid_inputs(self):
        with pytest.raises(PrivacyError):
            MomentsAccountant(0.0, 0.1)
        acc = MomentsAccountant(5.0, 0.1)
        with pytest.raises(PrivacyError):
            acc.get_epsilon(0.0)
        with pytest.raises(PrivacyError):
            acc.get_delta(-1.0)
