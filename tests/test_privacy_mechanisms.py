"""Tests for clipping, the Gaussian mechanism and sensitivity helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Graph, PrivacyError
from repro.privacy import (
    GaussianMechanism,
    batch_gradient_sensitivity,
    clip_gradient,
    clip_rows,
    node_level_edge_change_bound,
    per_example_sensitivity,
)


class TestClipping:
    def test_clip_gradient_norm_bound(self, rng):
        g = rng.normal(size=20) * 10
        clipped = clip_gradient(g, 1.5)
        assert np.linalg.norm(clipped) <= 1.5 + 1e-9

    def test_clip_gradient_small_vector_unchanged(self):
        g = np.array([0.1, -0.2, 0.05])
        np.testing.assert_allclose(clip_gradient(g, 5.0), g)

    def test_clip_rows_each_row_bounded(self, rng):
        m = rng.normal(size=(6, 4)) * 100
        clipped = clip_rows(m, 2.0)
        assert np.all(np.linalg.norm(clipped, axis=1) <= 2.0 + 1e-9)

    def test_clip_rows_preserves_direction(self):
        m = np.array([[3.0, 4.0], [0.3, 0.4]])
        clipped = clip_rows(m, 1.0)
        np.testing.assert_allclose(clipped[0], [0.6, 0.8])
        np.testing.assert_allclose(clipped[1], [0.3, 0.4])

    def test_invalid_threshold_raises(self):
        with pytest.raises(PrivacyError):
            clip_gradient(np.ones(3), 0.0)
        with pytest.raises(PrivacyError):
            clip_rows(np.ones((2, 2)), -1.0)

    def test_clip_rows_rejects_1d(self):
        with pytest.raises(PrivacyError):
            clip_rows(np.ones(5), 1.0)


class TestGaussianMechanism:
    def test_noise_statistics(self):
        mech = GaussianMechanism(noise_multiplier=2.0, sensitivity=3.0, seed=0)
        assert mech.noise_std == pytest.approx(6.0)
        values = np.zeros(20000)
        noisy = mech.add_noise(values)
        assert noisy.std() == pytest.approx(6.0, rel=0.05)
        assert abs(noisy.mean()) < 0.2

    def test_add_noise_to_rows_only_touches_selected(self):
        mech = GaussianMechanism(noise_multiplier=1.0, seed=0)
        matrix = np.zeros((5, 3))
        noisy = mech.add_noise_to_rows(matrix, np.array([1, 3, 3]))
        touched = np.any(noisy != 0, axis=1)
        np.testing.assert_array_equal(touched, [False, True, False, True, False])

    def test_add_noise_to_rows_rejects_out_of_range(self):
        mech = GaussianMechanism(noise_multiplier=1.0, seed=0)
        with pytest.raises(PrivacyError):
            mech.add_noise_to_rows(np.zeros((3, 2)), np.array([5]))

    def test_rdp_epsilon_formula(self):
        mech = GaussianMechanism(noise_multiplier=5.0, seed=0)
        assert mech.rdp_epsilon(2.0) == pytest.approx(2.0 / 50.0)
        with pytest.raises(PrivacyError):
            mech.rdp_epsilon(1.0)

    def test_rejects_bad_parameters(self):
        with pytest.raises(PrivacyError):
            GaussianMechanism(noise_multiplier=0.0)
        with pytest.raises(PrivacyError):
            GaussianMechanism(noise_multiplier=1.0, sensitivity=0.0)


class TestSensitivityHelpers:
    def test_per_example_sensitivity_is_clipping_threshold(self):
        assert per_example_sensitivity(2.0) == pytest.approx(2.0)
        with pytest.raises(PrivacyError):
            per_example_sensitivity(0.0)

    def test_batch_sensitivity_worst_case(self):
        assert batch_gradient_sensitivity(2.0, 128) == pytest.approx(256.0)

    def test_batch_sensitivity_with_affected_cap(self):
        assert batch_gradient_sensitivity(2.0, 128, affected_examples=10) == pytest.approx(20.0)
        assert batch_gradient_sensitivity(2.0, 8, affected_examples=100) == pytest.approx(16.0)

    def test_batch_sensitivity_invalid_inputs(self):
        with pytest.raises(PrivacyError):
            batch_gradient_sensitivity(2.0, 0)
        with pytest.raises(PrivacyError):
            batch_gradient_sensitivity(-1.0, 4)

    def test_node_level_edge_change_bound_is_max_degree(self, star_graph):
        assert node_level_edge_change_bound(star_graph) == 5

    def test_node_level_bound_empty_graph(self):
        assert node_level_edge_change_bound(Graph(3, [])) == 0
