"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import Graph
from repro.evaluation import pearson_correlation, roc_auc_score
from repro.privacy import RdpAccountant, clip_gradient, gaussian_rdp, rdp_to_dp
from repro.privacy.subsampling import subsampled_rdp
from repro.proximity import CommonNeighborsProximity, DegreeProximity, ProximityMatrix
from repro.utils.math import clip_norm, log_sigmoid, pairwise_euclidean, sigmoid


# --------------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------------- #
@st.composite
def edge_lists(draw, max_nodes=12):
    """Random simple undirected graphs as (num_nodes, edge list)."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), max_size=len(possible)))
    return n, edges


finite_vectors = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=30,
)


# --------------------------------------------------------------------------- #
# graph invariants
# --------------------------------------------------------------------------- #
class TestGraphProperties:
    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_degree_sum_equals_twice_edges(self, data):
        n, edges = data
        graph = Graph(n, edges)
        assert int(graph.degrees().sum()) == 2 * graph.num_edges

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_adjacency_symmetric_and_matches_has_edge(self, data):
        n, edges = data
        graph = Graph(n, edges)
        dense = graph.adjacency_matrix(dense=True)
        np.testing.assert_allclose(dense, dense.T)
        for i in range(n):
            for j in range(n):
                assert bool(dense[i, j]) == graph.has_edge(i, j)

    @given(edge_lists())
    @settings(max_examples=30, deadline=None)
    def test_neighbors_consistent_with_edges(self, data):
        n, edges = data
        graph = Graph(n, edges)
        for node in range(n):
            for neighbor in graph.neighbors(node):
                assert graph.has_edge(node, int(neighbor))


# --------------------------------------------------------------------------- #
# proximity invariants
# --------------------------------------------------------------------------- #
class TestProximityProperties:
    @given(edge_lists())
    @settings(max_examples=25, deadline=None)
    def test_common_neighbors_symmetric_nonnegative(self, data):
        n, edges = data
        graph = Graph(n, edges)
        matrix = CommonNeighborsProximity().compute(graph).matrix
        assert np.all(matrix >= 0)
        np.testing.assert_allclose(matrix, matrix.T)
        np.testing.assert_allclose(np.diag(matrix), 0.0)

    @given(edge_lists(), st.integers(min_value=1, max_value=10))
    @settings(max_examples=25, deadline=None)
    def test_theorem3_optimum_scale_invariance(self, data, k):
        """Eq. (10) depends only on p_ij / min(P): rescaling P never changes it."""
        n, edges = data
        graph = Graph(n, edges)
        matrix = DegreeProximity().compute(graph).matrix
        if matrix.max() <= 0:
            return
        base = ProximityMatrix(matrix)
        scaled = ProximityMatrix(matrix * 3.7)
        for u, v in graph.edges[: min(5, graph.num_edges)]:
            assert base.theoretical_optimal_inner_product(int(u), int(v), k) == pytest.approx(
                scaled.theoretical_optimal_inner_product(int(u), int(v), k), rel=1e-9
            )


# --------------------------------------------------------------------------- #
# privacy invariants
# --------------------------------------------------------------------------- #
class TestPrivacyProperties:
    @given(
        st.floats(min_value=0.5, max_value=20.0),
        st.floats(min_value=0.001, max_value=1.0),
        st.floats(min_value=1.5, max_value=64.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_subsampling_never_hurts(self, sigma, gamma, alpha):
        rdp_at = lambda a: a / (2.0 * sigma**2)
        assert subsampled_rdp(alpha, gamma, rdp_at) <= rdp_at(alpha) + 1e-12

    @given(
        st.floats(min_value=0.5, max_value=20.0),
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=1, max_value=200),
    )
    @settings(max_examples=40, deadline=None)
    def test_rdp_composition_is_additive_in_epsilon(self, sigma, steps_a, steps_b):
        acc = RdpAccountant(noise_multiplier=sigma, sampling_rate=0.05)
        acc.step(steps_a)
        eps_a = acc.get_privacy_spent(1e-5).epsilon
        acc.step(steps_b)
        eps_ab = acc.get_privacy_spent(1e-5).epsilon
        assert eps_ab >= eps_a - 1e-12

    @given(st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=40),
           st.floats(min_value=0.01, max_value=50.0))
    @settings(max_examples=60, deadline=None)
    def test_clipping_bounds_norm(self, values, threshold):
        clipped = clip_gradient(np.array(values), threshold)
        assert np.linalg.norm(clipped) <= threshold * (1 + 1e-9)

    @given(st.floats(min_value=0.5, max_value=30.0), st.floats(min_value=1e-8, max_value=0.1))
    @settings(max_examples=40, deadline=None)
    def test_rdp_to_dp_epsilon_positive(self, sigma, delta):
        curve = gaussian_rdp(sigma, [2.0, 8.0, 32.0])
        eps, alpha = rdp_to_dp(curve, [2.0, 8.0, 32.0], delta)
        assert eps > 0
        assert alpha in (2.0, 8.0, 32.0)


# --------------------------------------------------------------------------- #
# math / metric invariants
# --------------------------------------------------------------------------- #
class TestMathProperties:
    @given(finite_vectors)
    @settings(max_examples=60, deadline=None)
    def test_sigmoid_in_unit_interval(self, values):
        out = sigmoid(np.array(values))
        assert np.all(out >= 0.0) and np.all(out <= 1.0)

    @given(finite_vectors)
    @settings(max_examples=60, deadline=None)
    def test_log_sigmoid_nonpositive(self, values):
        out = log_sigmoid(np.array(values))
        assert np.all(out <= 1e-12)
        assert np.all(np.isfinite(out))

    @given(st.lists(st.floats(min_value=-50, max_value=50), min_size=4, max_size=20),
           st.lists(st.floats(min_value=-50, max_value=50), min_size=4, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_pearson_bounded(self, xs, ys):
        size = min(len(xs), len(ys))
        value = pearson_correlation(np.array(xs[:size]), np.array(ys[:size]))
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9

    @given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_auc_complement_symmetry(self, size, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 2, size=size)
        if labels.sum() in (0, size):
            return
        scores = rng.normal(size=size)
        auc = roc_auc_score(labels, scores)
        flipped = roc_auc_score(labels, -scores)
        assert auc + flipped == pytest.approx(1.0, abs=1e-9)

    @given(st.integers(min_value=2, max_value=15), st.integers(min_value=1, max_value=6),
           st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=40, deadline=None)
    def test_pairwise_euclidean_triangle_inequality(self, n, dim, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n, dim))
        d = pairwise_euclidean(x)
        i, j, k = rng.integers(0, n, size=3)
        assert d[i, k] <= d[i, j] + d[j, k] + 1e-8

    @given(st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=1, max_size=20),
           st.floats(min_value=0.01, max_value=100.0))
    @settings(max_examples=40, deadline=None)
    def test_clip_norm_is_idempotent(self, values, threshold):
        v = np.array(values)
        once = clip_norm(v, threshold)
        twice = clip_norm(once, threshold)
        np.testing.assert_allclose(once, twice, atol=1e-12)
