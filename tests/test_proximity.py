"""Tests for the proximity measures and the ProximityMatrix wrapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Graph, ProximityError
from repro.proximity import (
    AdamicAdarProximity,
    CommonNeighborsProximity,
    DeepWalkProximity,
    DegreeProximity,
    JaccardProximity,
    KatzProximity,
    PersonalizedPageRankProximity,
    PreferentialAttachmentProximity,
    ProximityMatrix,
    ResourceAllocationProximity,
    available_proximities,
    get_proximity,
)

ALL_MEASURES = [
    CommonNeighborsProximity(),
    PreferentialAttachmentProximity(),
    JaccardProximity(),
    AdamicAdarProximity(),
    ResourceAllocationProximity(),
    KatzProximity(beta=0.05),
    PersonalizedPageRankProximity(damping=0.85),
    DeepWalkProximity(window_size=3),
    DegreeProximity(),
]


class TestProximityMatrix:
    def test_basic_derived_quantities(self):
        matrix = np.array([[0.0, 2.0, 0.5], [2.0, 0.0, 0.0], [0.5, 0.0, 0.0]])
        prox = ProximityMatrix(matrix, name="toy")
        assert prox.num_nodes == 3
        assert prox.min_positive == pytest.approx(0.5)
        np.testing.assert_allclose(prox.row_sums, [2.5, 2.0, 0.5])
        assert prox.pair_value(0, 1) == pytest.approx(2.0)
        np.testing.assert_allclose(
            prox.pair_values([0, 0], [1, 2]), [2.0, 0.5]
        )

    def test_negative_sampling_mass(self):
        matrix = np.array([[0.0, 2.0], [2.0, 0.0]])
        prox = ProximityMatrix(matrix)
        assert prox.negative_sampling_mass(0) == pytest.approx(2.0 / 2.0 * 1.0)
        assert 0 < prox.negative_sampling_mass(0) <= 1.0

    def test_theoretical_optimum_eq10(self):
        matrix = np.array([[0.0, 4.0, 1.0], [4.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        prox = ProximityMatrix(matrix)
        k = 2
        expected = np.log(4.0 / (k * 1.0))
        assert prox.theoretical_optimal_inner_product(0, 1, k) == pytest.approx(expected)
        assert prox.theoretical_optimal_inner_product(1, 2, k) == float("-inf")

    def test_rejects_invalid_matrices(self):
        with pytest.raises(ProximityError):
            ProximityMatrix(np.ones((2, 3)))
        with pytest.raises(ProximityError):
            ProximityMatrix(np.array([[0.0, -1.0], [-1.0, 0.0]]))
        with pytest.raises(ProximityError):
            ProximityMatrix(np.array([[0.0, np.nan], [np.nan, 0.0]]))

    def test_normalized_peak_is_one(self):
        matrix = np.array([[0.0, 8.0], [8.0, 0.0]])
        normed = ProximityMatrix(matrix).normalized()
        assert normed.matrix.max() == pytest.approx(1.0)


class TestMeasureProperties:
    @pytest.mark.parametrize("measure", ALL_MEASURES, ids=lambda m: m.name)
    def test_shape_nonnegative_zero_diagonal(self, measure, small_graph):
        prox = measure.compute(small_graph)
        n = small_graph.num_nodes
        assert prox.matrix.shape == (n, n)
        assert np.all(prox.matrix >= 0)
        np.testing.assert_allclose(np.diag(prox.matrix), np.zeros(n))

    @pytest.mark.parametrize(
        "measure",
        [
            CommonNeighborsProximity(),
            PreferentialAttachmentProximity(),
            JaccardProximity(),
            AdamicAdarProximity(),
            ResourceAllocationProximity(),
            KatzProximity(beta=0.05),
            DeepWalkProximity(window_size=3),
            DegreeProximity(),
        ],
        ids=lambda m: m.name,
    )
    def test_symmetry_for_symmetric_measures(self, measure, small_graph):
        # PPR is row-normalised by design and therefore not symmetric; all the
        # others must be symmetric on an undirected graph.
        matrix = measure.compute(small_graph).matrix
        np.testing.assert_allclose(matrix, matrix.T, atol=1e-8)


class TestSpecificValues:
    def test_common_neighbors_on_triangle(self, triangle_graph):
        prox = CommonNeighborsProximity().compute(triangle_graph)
        # nodes 1 and 2 share neighbour 0; nodes 1 and 3 share neighbour 0 too
        assert prox.pair_value(1, 2) == pytest.approx(1.0)
        assert prox.pair_value(1, 3) == pytest.approx(1.0)
        # nodes 0 and 3: neighbours of 3 = {0}, no common neighbour with 0
        assert prox.pair_value(0, 3) == pytest.approx(0.0)

    def test_preferential_attachment_values(self, triangle_graph):
        prox = PreferentialAttachmentProximity().compute(triangle_graph)
        degrees = triangle_graph.degrees()
        assert prox.pair_value(0, 1) == pytest.approx(degrees[0] * degrees[1])

    def test_jaccard_bounded_by_one(self, small_graph):
        matrix = JaccardProximity().compute(small_graph).matrix
        assert matrix.max() <= 1.0 + 1e-9

    def test_adamic_adar_on_square(self):
        square = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        prox = AdamicAdarProximity().compute(square)
        # 0 and 2 share neighbours 1 and 3, each of degree 2
        assert prox.pair_value(0, 2) == pytest.approx(2.0 / np.log(2.0))

    def test_resource_allocation_on_square(self):
        square = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        prox = ResourceAllocationProximity().compute(square)
        assert prox.pair_value(0, 2) == pytest.approx(1.0)

    def test_katz_requires_convergent_beta(self, small_graph):
        with pytest.raises(ProximityError):
            KatzProximity(beta=10.0).compute(small_graph)
        with pytest.raises(ProximityError):
            KatzProximity(beta=0.0)

    def test_katz_matches_series_expansion(self, path_graph):
        beta = 0.05
        adjacency = np.asarray(path_graph.adjacency_matrix(dense=True))
        series = sum(beta**t * np.linalg.matrix_power(adjacency, t) for t in range(1, 30))
        katz = KatzProximity(beta=beta).compute(path_graph).matrix
        np.testing.assert_allclose(katz, series - np.diag(np.diag(series)), atol=1e-6)

    def test_ppr_rows_approximately_stochastic(self, small_graph):
        matrix = PersonalizedPageRankProximity(damping=0.85).compute(small_graph).matrix
        # after removing the diagonal, rows sum to slightly less than one
        sums = matrix.sum(axis=1)
        assert np.all(sums <= 1.0 + 1e-9)
        assert np.all(sums > 0.5)

    def test_deepwalk_proximity_positive_on_edges(self, small_graph):
        prox = DeepWalkProximity(window_size=3).compute(small_graph)
        for u, v in small_graph.edges[:20]:
            assert prox.pair_value(int(u), int(v)) > 0

    def test_degree_proximity_connected_only(self, star_graph):
        connected = DegreeProximity(connected_only=True).compute(star_graph)
        full = DegreeProximity(connected_only=False).compute(star_graph)
        assert connected.pair_value(1, 2) == pytest.approx(0.0)
        assert full.pair_value(1, 2) > 0
        assert connected.pair_value(0, 1) > 0


class TestRegistry:
    def test_all_names_instantiable(self, small_graph):
        for name in available_proximities():
            measure = get_proximity(name)
            prox = measure.compute(small_graph)
            assert prox.matrix.shape == (small_graph.num_nodes, small_graph.num_nodes)

    def test_kwargs_forwarded(self):
        measure = get_proximity("deepwalk", window_size=7)
        assert measure.window_size == 7

    def test_unknown_name_raises(self):
        with pytest.raises(ProximityError):
            get_proximity("unknown-proximity")
