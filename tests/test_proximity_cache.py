"""Tests for the proximity cache (content keys, tiers, invalidation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Graph, ProximityError
from repro.proximity import (
    DeepWalkProximity,
    DegreeProximity,
    ProximityCache,
    compute_proximity,
    default_proximity_cache,
    graph_fingerprint,
)


def _non_edge(graph: Graph) -> tuple[int, int]:
    """First node pair that is not an edge (so mutation helpers really mutate)."""
    for u in range(graph.num_nodes):
        for v in range(u + 1, graph.num_nodes):
            if not graph.has_edge(u, v):
                return (u, v)
    raise AssertionError("graph is complete")


class TestGraphFingerprint:
    def test_deterministic_and_name_independent(self, small_graph):
        copy = Graph(small_graph.num_nodes, small_graph.edges, name="other-name")
        assert graph_fingerprint(small_graph) == graph_fingerprint(copy)

    def test_changes_with_edges_and_num_nodes(self, small_graph):
        mutated = small_graph.with_extra_edges([_non_edge(small_graph)])
        pruned = small_graph.subgraph_without_edges([tuple(small_graph.edges[0])])
        padded = Graph(small_graph.num_nodes + 1, small_graph.edges)
        fingerprints = {
            graph_fingerprint(g) for g in (small_graph, mutated, pruned, padded)
        }
        assert len(fingerprints) == 4


class TestMemoryTier:
    def test_hit_returns_same_object(self, small_graph):
        cache = ProximityCache()
        measure = DeepWalkProximity(window_size=3)
        first = cache.get_or_compute(measure, small_graph)
        second = cache.get_or_compute(measure, small_graph)
        assert second is first
        assert cache.misses == 1 and cache.hits == 1

    def test_equal_parameters_share_entries_across_instances(self, small_graph):
        cache = ProximityCache()
        first = cache.get_or_compute(DeepWalkProximity(window_size=3), small_graph)
        second = cache.get_or_compute(DeepWalkProximity(window_size=3), small_graph)
        assert second is first

    def test_different_parameters_miss(self, small_graph):
        cache = ProximityCache()
        cache.get_or_compute(DeepWalkProximity(window_size=3), small_graph)
        cache.get_or_compute(DeepWalkProximity(window_size=4), small_graph)
        assert cache.misses == 2 and cache.hits == 0

    def test_backend_is_part_of_the_key(self, small_graph):
        cache = ProximityCache()
        sparse_prox = cache.get_or_compute(
            DegreeProximity(), small_graph, sparse=True
        )
        dense_prox = cache.get_or_compute(
            DegreeProximity(), small_graph, sparse=False
        )
        assert sparse_prox.is_sparse and not dense_prox.is_sparse
        assert cache.misses == 2

    def test_graph_mutation_invalidates_by_content(self, small_graph):
        cache = ProximityCache()
        measure = DegreeProximity()
        cache.get_or_compute(measure, small_graph)
        mutated = small_graph.with_extra_edges([_non_edge(small_graph)])
        recomputed = cache.get_or_compute(measure, mutated)
        assert cache.misses == 2  # the mutated graph cannot hit the stale entry
        assert recomputed.num_nodes == mutated.num_nodes

    def test_explicit_invalidate_drops_all_entries_of_a_graph(self, small_graph):
        cache = ProximityCache()
        cache.get_or_compute(DegreeProximity(), small_graph)
        cache.get_or_compute(DeepWalkProximity(window_size=2), small_graph)
        assert len(cache) == 2
        removed = cache.invalidate(small_graph)
        assert removed == 2 and len(cache) == 0
        cache.get_or_compute(DegreeProximity(), small_graph)
        assert cache.misses == 3

    def test_lru_bound(self, small_graph):
        cache = ProximityCache(max_memory_items=2)
        for window in (2, 3, 4):
            cache.get_or_compute(DeepWalkProximity(window_size=window), small_graph)
        assert len(cache) == 2
        # window=2 was evicted, windows 3 and 4 survive
        assert cache.get(DeepWalkProximity(window_size=4), small_graph) is not None
        assert cache.get(DeepWalkProximity(window_size=2), small_graph) is None

    def test_byte_budget_evicts_lru_but_keeps_newest(self, small_graph):
        probe = ProximityCache()
        one_entry = probe.get_or_compute(DeepWalkProximity(window_size=2), small_graph).nbytes
        cache = ProximityCache(max_memory_bytes=int(one_entry * 1.5))
        for window in (2, 3):
            cache.get_or_compute(DeepWalkProximity(window_size=window), small_graph)
        assert len(cache) == 1  # budget fits one entry: LRU evicted
        assert cache.get(DeepWalkProximity(window_size=3), small_graph) is not None
        # a single oversized entry is still cached (cache of one)
        tiny = ProximityCache(max_memory_bytes=1)
        kept = tiny.get_or_compute(DeepWalkProximity(window_size=2), small_graph)
        assert tiny.get_or_compute(DeepWalkProximity(window_size=2), small_graph) is kept

    def test_byte_accounting_survives_lazy_key_growth(self, small_graph):
        cache = ProximityCache()
        # CSR-backed entry: pair lookups build the lazy key array afterwards
        prox = cache.get_or_compute(DegreeProximity(), small_graph)
        assert prox.is_sparse
        before = prox.nbytes
        prox.pair_value(0, 1)
        assert prox.nbytes > before  # the matrix really grew post-store
        cache.invalidate(small_graph)
        # eviction subtracts the store-time snapshot, never going negative
        assert cache._memory_bytes == 0 and len(cache) == 0

    def test_freeze_copies_caller_owned_dense_arrays(self, small_graph):
        from repro.proximity import ProximityMatrix

        raw = DegreeProximity().compute_matrix(small_graph)  # caller-owned float64
        np.fill_diagonal(raw, 0.0)
        wrapped = ProximityMatrix(raw, name="degree")
        cache = ProximityCache()
        cache.put(DegreeProximity(), small_graph, wrapped, sparse=False)
        raw[0, 0] = 123.0  # the caller's array must stay writable
        assert cache.get(DegreeProximity(), small_graph, sparse=False).matrix[0, 0] == 0.0

    def test_rejects_bad_capacity(self):
        with pytest.raises(ProximityError):
            ProximityCache(max_memory_items=0)
        with pytest.raises(ProximityError):
            ProximityCache(max_memory_bytes=0)


class TestDiskTier:
    def test_round_trip_preserves_values_and_backend(self, small_graph, tmp_path):
        warm = ProximityCache(directory=tmp_path)
        measure = DeepWalkProximity(window_size=3)
        computed = warm.get_or_compute(measure, small_graph)

        cold = ProximityCache(directory=tmp_path)  # fresh process, same directory
        loaded = cold.get_or_compute(measure, small_graph)
        assert cold.hits == 1 and cold.misses == 0
        assert loaded.is_sparse == computed.is_sparse
        assert loaded.name == computed.name
        np.testing.assert_allclose(loaded.matrix, computed.matrix)
        np.testing.assert_allclose(loaded.row_sums, computed.row_sums)

    def test_round_trip_dense_backend(self, small_graph, tmp_path):
        warm = ProximityCache(directory=tmp_path)
        measure = DegreeProximity()
        computed = warm.get_or_compute(measure, small_graph, sparse=False)
        cold = ProximityCache(directory=tmp_path)
        loaded = cold.get_or_compute(measure, small_graph, sparse=False)
        assert not loaded.is_sparse
        np.testing.assert_allclose(loaded.matrix, computed.matrix)

    def test_corrupt_disk_entry_degrades_to_recompute(self, small_graph, tmp_path):
        warm = ProximityCache(directory=tmp_path)
        warm.get_or_compute(DegreeProximity(), small_graph)
        (payload,) = tmp_path.glob("*.npz")
        payload.write_bytes(b"not an npz archive")
        cold = ProximityCache(directory=tmp_path)
        recovered = cold.get_or_compute(DegreeProximity(), small_graph)
        assert cold.misses == 1 and recovered.num_nodes == small_graph.num_nodes
        # the bad file was dropped and replaced by the recompute's store
        cold2 = ProximityCache(directory=tmp_path)
        assert cold2.get(DegreeProximity(), small_graph) is not None

    def test_invalidate_removes_disk_entries(self, small_graph, tmp_path):
        cache = ProximityCache(directory=tmp_path)
        cache.get_or_compute(DegreeProximity(), small_graph)
        assert list(tmp_path.glob("*.npz"))
        cache.invalidate(small_graph)
        assert not list(tmp_path.glob("*.npz"))
        cold = ProximityCache(directory=tmp_path)
        cold.get_or_compute(DegreeProximity(), small_graph)
        assert cold.misses == 1

    def test_clear_resets_statistics_and_disk(self, small_graph, tmp_path):
        cache = ProximityCache(directory=tmp_path)
        cache.get_or_compute(DegreeProximity(), small_graph)
        cache.clear()
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0
        assert not list(tmp_path.glob("*.npz"))

    def test_clear_spares_unrelated_npz_files(self, small_graph, tmp_path):
        foreign = tmp_path / "saved_embeddings.npz"
        np.savez(foreign, embeddings=np.zeros((3, 2)))
        cache = ProximityCache(directory=tmp_path)
        cache.get_or_compute(DegreeProximity(), small_graph)
        cache.clear()
        assert foreign.exists()

    def test_clear_reaps_old_orphaned_temp_files_but_spares_fresh_ones(
        self, small_graph, tmp_path
    ):
        import os
        import time

        # a writer killed between savez and os.replace leaves this behind
        orphan = tmp_path / f".{'0' * 32}-{'1' * 32}.12345-abcdef01.npz"
        np.savez(orphan, data=np.zeros(2))
        stale = time.time() - 7200
        os.utime(orphan, (stale, stale))
        # a fresh temp file may belong to a live concurrent writer
        in_flight = tmp_path / f".{'2' * 32}-{'3' * 32}.67890-abcdef02.npz"
        np.savez(in_flight, data=np.zeros(2))
        cache = ProximityCache(directory=tmp_path)
        cache.clear()
        assert not orphan.exists()
        assert in_flight.exists()

    def test_cached_matrices_are_frozen_against_mutation(self, small_graph):
        cache = ProximityCache()
        prox = cache.get_or_compute(DegreeProximity(), small_graph)
        with pytest.raises(ValueError):
            prox.sparse_matrix.data[0] = 1e9
        dense = cache.get_or_compute(DegreeProximity(), small_graph, sparse=False)
        with pytest.raises(ValueError):
            dense.matrix[0, 0] = 1e9


class TestComputeProximityFrontDoor:
    def test_by_name_with_kwargs(self, small_graph):
        cache = ProximityCache()
        prox = compute_proximity("deepwalk", small_graph, cache=cache, window_size=2)
        assert prox.name == "deepwalk"
        again = compute_proximity("deepwalk", small_graph, cache=cache, window_size=2)
        assert again is prox

    def test_with_measure_instance(self, small_graph):
        cache = ProximityCache()
        prox = compute_proximity(DegreeProximity(), small_graph, cache=cache)
        assert prox.name == "degree"
        with pytest.raises(ProximityError):
            compute_proximity(DegreeProximity(), small_graph, cache=cache, window_size=2)

    def test_runner_tristate_cache_semantics(self, small_graph):
        from repro import PrivacyConfig, TrainingConfig
        from repro.experiments.runner import embed_with_method
        from repro.proximity import default_proximity_cache

        cfg = TrainingConfig(
            embedding_dim=8, batch_size=16, learning_rate=0.1, negative_samples=2, epochs=2
        )
        priv = PrivacyConfig(
            epsilon=3.5, delta=1e-5, noise_multiplier=5.0, clipping_threshold=2.0
        )
        default = default_proximity_cache()
        default.clear()
        # False bypasses caching entirely
        embed_with_method("se_gemb_deg", small_graph, cfg, priv, seed=0, proximity_cache=False)
        assert len(default) == 0
        # an explicit-but-empty cache (falsy via __len__) is still honoured
        empty = ProximityCache()
        embed_with_method("se_gemb_deg", small_graph, cfg, priv, seed=0, proximity_cache=empty)
        assert len(empty) == 1 and len(default) == 0

    def test_default_cache_is_shared(self, small_graph):
        default = default_proximity_cache()
        baseline_hits = default.hits
        first = compute_proximity("degree", small_graph)
        second = compute_proximity("degree", small_graph)
        assert second is first
        assert default.hits > baseline_hits
