"""Sparse-vs-dense equivalence of every registered proximity measure.

The CSR backend must be a drop-in replacement for the dense one: same
values, same derived quantities (``min_positive``, ``row_sums``, Eq.-10
optima), to 1e-10.  This is the same discipline PR 1 pinned for the
vectorized engine against the per-example loop.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro import Graph, ProximityError
from repro.proximity import (
    DeepWalkProximity,
    KatzProximity,
    ProximityMatrix,
    available_proximities,
    get_proximity,
    spectral_radius,
)

TOL = dict(rtol=1e-10, atol=1e-12)

#: registry name -> constructor kwargs exercising non-default parameters
MEASURE_PARAMS: dict[str, dict] = {
    "common_neighbors": {},
    "preferential_attachment": {},
    "jaccard": {},
    "adamic_adar": {},
    "resource_allocation": {},
    "katz": {"beta": 0.05},
    "ppr": {"damping": 0.85},
    "deepwalk": {"window_size": 4},
    "degree": {},
}


def _measure(name):
    return get_proximity(name, **MEASURE_PARAMS[name])


@pytest.fixture(scope="module", params=sorted(MEASURE_PARAMS), ids=str)
def measure_pair(request, small_graph):
    """(dense ProximityMatrix, sparse ProximityMatrix) of one measure."""
    measure = _measure(request.param)
    return (
        measure.compute(small_graph, sparse=False),
        measure.compute(small_graph, sparse=True),
    )


class TestSparseDenseEquivalence:
    def test_registry_covers_every_measure(self):
        assert sorted(MEASURE_PARAMS) == available_proximities()

    def test_backends(self, measure_pair):
        dense, sparse_prox = measure_pair
        assert not dense.is_sparse
        assert sparse_prox.is_sparse

    def test_matrix_values(self, measure_pair):
        dense, sparse_prox = measure_pair
        np.testing.assert_allclose(sparse_prox.matrix, dense.matrix, **TOL)

    def test_min_positive_and_max_value(self, measure_pair):
        dense, sparse_prox = measure_pair
        assert sparse_prox.min_positive == pytest.approx(dense.min_positive, rel=1e-10)
        assert sparse_prox.max_value == pytest.approx(dense.max_value, rel=1e-10)

    def test_row_sums(self, measure_pair):
        dense, sparse_prox = measure_pair
        np.testing.assert_allclose(sparse_prox.row_sums, dense.row_sums, **TOL)

    def test_pair_values_on_edges_and_random_pairs(self, measure_pair, small_graph, rng):
        dense, sparse_prox = measure_pair
        centers = np.concatenate(
            [small_graph.edges[:, 0], rng.integers(0, small_graph.num_nodes, 200)]
        )
        contexts = np.concatenate(
            [small_graph.edges[:, 1], rng.integers(0, small_graph.num_nodes, 200)]
        )
        np.testing.assert_allclose(
            sparse_prox.pair_values(centers, contexts),
            dense.pair_values(centers, contexts),
            **TOL,
        )

    def test_eq10_optima(self, measure_pair, small_graph, rng):
        dense, sparse_prox = measure_pair
        k = 5
        centers = rng.integers(0, small_graph.num_nodes, 300)
        contexts = rng.integers(0, small_graph.num_nodes, 300)
        np.testing.assert_allclose(
            sparse_prox.theoretical_optimal_inner_products(centers, contexts, k),
            dense.theoretical_optimal_inner_products(centers, contexts, k),
            **TOL,
        )
        # the vectorized form must match the scalar Eq. (10) entry-point
        for i, j in zip(centers[:20], contexts[:20], strict=True):
            assert sparse_prox.theoretical_optimal_inner_product(
                int(i), int(j), k
            ) == pytest.approx(
                dense.theoretical_optimal_inner_product(int(i), int(j), k), rel=1e-10
            )

    def test_negative_sampling_masses(self, measure_pair, small_graph):
        dense, sparse_prox = measure_pair
        centers = np.arange(small_graph.num_nodes)
        np.testing.assert_allclose(
            sparse_prox.negative_sampling_masses(centers),
            dense.negative_sampling_masses(centers),
            **TOL,
        )
        for node in range(0, small_graph.num_nodes, 13):
            assert sparse_prox.negative_sampling_mass(node) == pytest.approx(
                dense.negative_sampling_mass(node), rel=1e-10
            )

    def test_normalized_equivalence(self, measure_pair):
        dense, sparse_prox = measure_pair
        normed_sparse = sparse_prox.normalized()
        normed_dense = dense.normalized()
        assert normed_sparse.is_sparse == sparse_prox.is_sparse
        np.testing.assert_allclose(normed_sparse.matrix, normed_dense.matrix, **TOL)
        if dense.max_value > 0:
            assert normed_sparse.max_value == pytest.approx(1.0)


class TestSparseProximityMatrixApi:
    def _toy_csr(self):
        return sparse.csr_matrix(
            np.array([[0.0, 2.0, 0.5], [2.0, 0.0, 0.0], [0.5, 0.0, 0.0]])
        )

    def test_basic_derived_quantities(self):
        prox = ProximityMatrix(self._toy_csr(), name="toy")
        assert prox.is_sparse
        assert prox.num_nodes == 3
        assert prox.nnz == 4
        assert prox.min_positive == pytest.approx(0.5)
        assert prox.max_value == pytest.approx(2.0)
        np.testing.assert_allclose(prox.row_sums, [2.5, 2.0, 0.5])
        assert prox.pair_value(0, 1) == pytest.approx(2.0)
        assert prox.pair_value(1, 2) == 0.0  # structural zero
        np.testing.assert_allclose(prox.pair_values([0, 0, 2], [1, 2, 1]), [2.0, 0.5, 0.0])

    def test_explicit_zeros_are_eliminated(self):
        matrix = sparse.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        matrix[0, 1] = 0.0  # leaves an explicit zero behind
        prox = ProximityMatrix(matrix)
        assert prox.nnz == 1
        assert prox.min_positive == pytest.approx(1.0)

    def test_rejects_invalid_sparse_matrices(self):
        with pytest.raises(ProximityError):
            ProximityMatrix(sparse.csr_matrix(np.ones((2, 3))))
        with pytest.raises(ProximityError):
            ProximityMatrix(sparse.csr_matrix(np.array([[0.0, -1.0], [-1.0, 0.0]])))
        with pytest.raises(ProximityError):
            ProximityMatrix(sparse.csr_matrix(np.array([[0.0, np.nan], [np.nan, 0.0]])))

    def test_sparse_matrix_accessor_round_trips(self):
        dense_values = np.array([[0.0, 3.0], [3.0, 0.0]])
        dense_prox = ProximityMatrix(dense_values)
        assert not dense_prox.is_sparse
        np.testing.assert_allclose(dense_prox.sparse_matrix.toarray(), dense_values)
        sparse_prox = ProximityMatrix(sparse.csr_matrix(dense_values))
        np.testing.assert_allclose(sparse_prox.matrix, dense_values)

    def test_all_zero_sparse_matrix(self):
        prox = ProximityMatrix(sparse.csr_matrix((3, 3)))
        assert prox.min_positive == 0.0
        assert prox.max_value == 0.0
        assert prox.negative_sampling_mass(0) == 0.0
        assert prox.normalized().nnz == 0

    def test_repr_names_backend(self):
        assert "csr" in repr(ProximityMatrix(self._toy_csr()))
        assert "dense" in repr(ProximityMatrix(np.zeros((2, 2))))

    @pytest.mark.parametrize("backend", ["csr", "dense"])
    def test_lookups_reject_out_of_range_indices(self, backend):
        matrix = np.array([[0.0, 2.0, 0.5], [2.0, 0.0, 0.0], [0.5, 0.0, 0.0]])
        prox = ProximityMatrix(sparse.csr_matrix(matrix) if backend == "csr" else matrix)
        # index 3 would alias to key (1, 0) via row*n+col; -1 would wrap in numpy
        for bad in (3, -1):
            with pytest.raises(ProximityError):
                prox.pair_value(0, bad)
            with pytest.raises(ProximityError):
                prox.pair_values(np.array([0]), np.array([bad]))
            with pytest.raises(ProximityError):
                prox.negative_sampling_mass(bad)
            with pytest.raises(ProximityError):
                prox.theoretical_optimal_inner_products(np.array([bad]), np.array([0]), 2)

    def test_freeze_copies_ndarray_subclass_views(self):
        # np.asarray on an ndarray subclass returns a memory-sharing view,
        # so freeze() must copy or the caller's handle mutates the cache
        raw = np.matrix([[0.0, 1.0], [1.0, 0.0]])
        prox = ProximityMatrix(raw).freeze()
        raw[0, 1] = 99.0
        assert prox.pair_value(0, 1) == 1.0

    def test_frozen_matrix_rejects_inplace_writes(self):
        frozen_sparse = ProximityMatrix(self._toy_csr()).freeze()
        with pytest.raises(ValueError):
            frozen_sparse.sparse_matrix.data[0] = 99.0
        dense = ProximityMatrix(np.array([[0.0, 1.0], [1.0, 0.0]])).freeze()
        with pytest.raises(ValueError):
            dense.matrix[0, 1] = 99.0
        # derived copies stay writable
        assert frozen_sparse.normalized().sparse_matrix.data.flags.writeable
        assert dense.normalized().matrix.flags.writeable


class TestSparseComputePath:
    def test_diagonal_stripped_without_densifying(self, small_graph):
        prox = DeepWalkProximity(window_size=3).compute(small_graph, sparse=True)
        assert prox.is_sparse
        np.testing.assert_allclose(prox.sparse_matrix.diagonal(), 0.0)

    def test_default_backend_is_sparse_for_sparse_measures(self, small_graph):
        assert get_proximity("common_neighbors").compute(small_graph).is_sparse
        assert get_proximity("degree").compute(small_graph).is_sparse
        assert not get_proximity("preferential_attachment").compute(small_graph).is_sparse
        # truncated DeepWalk (bounded fill-in) defaults to CSR; exact powers
        # are structurally near-full, so the exact variant defaults dense
        assert DeepWalkProximity(
            window_size=2, truncation_threshold=1e-3
        ).compute(small_graph).is_sparse
        assert not DeepWalkProximity(window_size=2).compute(small_graph).is_sparse
        assert DeepWalkProximity(window_size=2).compute(small_graph, sparse=True).is_sparse
        # Katz/PPR resolvents are structurally full: CSR is opt-in, not default
        for name in ("katz", "ppr"):
            measure = get_proximity(name)
            assert measure.supports_sparse and not measure.resolve_backend(None)
            assert not measure.compute(small_graph).is_sparse
            assert measure.compute(small_graph, sparse=True).is_sparse

    def test_fingerprint_hashes_array_parameters(self, small_graph):
        from repro.proximity import ProximityMeasure

        class ArrayParamMeasure(ProximityMeasure):
            name = "array-param"

            def __init__(self, weights):
                self.weights = weights  # ndarray, or a container holding one

            def compute_matrix(self, graph):
                return np.zeros((graph.num_nodes, graph.num_nodes))

        a = np.zeros(2000)
        b = np.zeros(2000)
        b[1000] = 1.0  # repr() truncates both arrays to the same string
        assert ArrayParamMeasure(a).fingerprint() != ArrayParamMeasure(b).fingerprint()
        assert ArrayParamMeasure(a).fingerprint() == ArrayParamMeasure(a.copy()).fingerprint()
        # arrays nested inside containers are hashed too, not repr-truncated
        assert ArrayParamMeasure([a]).fingerprint() != ArrayParamMeasure([b]).fingerprint()
        assert (
            ArrayParamMeasure({"w": a}).fingerprint()
            != ArrayParamMeasure({"w": b}).fingerprint()
        )

    def test_fingerprint_hashes_callable_parameters_without_addresses(self):
        from repro.proximity import ProximityMeasure

        class CallableParamMeasure(ProximityMeasure):
            name = "callable-param"

            def __init__(self, fn):
                self.fn = fn

            def compute_matrix(self, graph):
                return np.zeros((graph.num_nodes, graph.num_nodes))

        half = lambda d: d**0.5
        threequarter = lambda d: d**0.75
        fp = CallableParamMeasure(half).fingerprint()
        assert "0x" not in fp  # no memory addresses: stable across processes
        assert fp == CallableParamMeasure(half).fingerprint()
        assert fp != CallableParamMeasure(threequarter).fingerprint()

        # closures and partials carry behaviour outside co_code: both must
        # reach the fingerprint or differently-configured measures collide
        import functools

        def make(offset):
            return lambda d: d + offset

        assert (
            CallableParamMeasure(make(0.0)).fingerprint()
            != CallableParamMeasure(make(100.0)).fingerprint()
        )
        base = lambda d, offset: d + offset
        assert (
            CallableParamMeasure(functools.partial(base, offset=0.0)).fingerprint()
            != CallableParamMeasure(functools.partial(base, offset=100.0)).fingerprint()
        )

    def test_fingerprint_distinguishes_same_named_classes(self):
        from repro.proximity import ProximityMeasure

        def make(registry_name):
            class Shadow(ProximityMeasure):
                name = registry_name

                def compute_matrix(self, graph):
                    return np.zeros((graph.num_nodes, graph.num_nodes))

            return Shadow()

        # identical class name and params, different registry names / identities
        assert make("variant-a").fingerprint() != make("variant-b").fingerprint()

    def test_dense_compute_path_freezes_without_copy(self, small_graph):
        prox = get_proximity("preferential_attachment").compute(small_graph)
        buffer = prox.matrix
        prox.freeze()
        assert prox.matrix is buffer  # no defensive n×n copy for owned arrays
        assert not buffer.flags.writeable

    def test_deepwalk_truncation_bounds_fill_in(self, medium_graph):
        exact = DeepWalkProximity(window_size=5).compute(medium_graph, sparse=True)
        truncated = DeepWalkProximity(
            window_size=5, truncation_threshold=5e-2
        ).compute(medium_graph, sparse=True)
        assert truncated.nnz < exact.nnz
        # the retained entries approximate the exact walk probabilities:
        # truncation only ever removes probability mass below the threshold
        exact_values = exact.pair_values(*truncated.sparse_matrix.nonzero())
        truncated_values = truncated.pair_values(*truncated.sparse_matrix.nonzero())
        assert np.all(truncated_values <= exact_values + 1e-12)

    def test_deepwalk_rejects_negative_threshold(self):
        with pytest.raises(ProximityError):
            DeepWalkProximity(truncation_threshold=-0.1)

    def test_katz_sparse_requires_convergent_beta(self, small_graph):
        with pytest.raises(ProximityError):
            KatzProximity(beta=10.0).compute(small_graph, sparse=True)

    def test_spectral_radius_matches_eigvalsh(self, small_graph, path_graph):
        for graph in (small_graph, path_graph):
            adjacency = graph.adjacency_matrix()
            expected = float(np.max(np.abs(np.linalg.eigvalsh(adjacency.toarray()))))
            assert spectral_radius(adjacency) == pytest.approx(expected, rel=1e-6)

    def test_spectral_radius_of_empty_graph_is_zero(self):
        graph = Graph(4, [])
        assert spectral_radius(graph.adjacency_matrix()) == 0.0

    def test_spectral_radius_near_degenerate_spectrum(self):
        # Two disjoint 4-cliques share the leading eigenvalue exactly
        # (lambda1 == lambda2 == 3): plain power iteration can stall below
        # the radius here, which would let a divergent Katz beta through.
        cliques = Graph(
            8,
            [(u, v) for base in (0, 4) for u in range(base, base + 4)
             for v in range(u + 1, base + 4)],
        )
        assert spectral_radius(cliques.adjacency_matrix()) == pytest.approx(3.0, rel=1e-9)
        with pytest.raises(ProximityError):
            KatzProximity(beta=0.34).compute(cliques, sparse=True)  # 0.34 > 1/3
