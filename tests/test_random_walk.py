"""Tests for the random-walk engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Graph, GraphError, RandomWalker


class TestWalkGeneration:
    def test_walk_length_and_validity(self, small_graph):
        walker = RandomWalker(small_graph, walk_length=10, seed=0)
        walk = walker.walk_from(0)
        assert len(walk) == 10
        for a, b in zip(walk, walk[1:], strict=False):
            assert small_graph.has_edge(a, b)

    def test_isolated_node_walk_stops_immediately(self):
        g = Graph(3, [(0, 1)])
        walker = RandomWalker(g, walk_length=5, seed=0)
        assert walker.walk_from(2) == [2]

    def test_generate_walks_covers_all_nodes(self, small_graph):
        walker = RandomWalker(small_graph, walk_length=5, seed=1)
        walks = walker.generate_walks(walks_per_node=2)
        assert len(walks) == 2 * small_graph.num_nodes
        starts = {walk[0] for walk in walks}
        assert starts == set(range(small_graph.num_nodes))

    def test_determinism_given_seed(self, small_graph):
        walks_a = RandomWalker(small_graph, walk_length=8, seed=3).generate_walks(1)
        walks_b = RandomWalker(small_graph, walk_length=8, seed=3).generate_walks(1)
        assert walks_a == walks_b

    def test_invalid_parameters_raise(self, small_graph):
        with pytest.raises(GraphError):
            RandomWalker(small_graph, walk_length=0)
        with pytest.raises(GraphError):
            RandomWalker(small_graph, walk_length=5, return_param=0.0)
        walker = RandomWalker(small_graph, walk_length=5)
        with pytest.raises(GraphError):
            walker.generate_walks(walks_per_node=0)


class TestBiasedWalks:
    def test_node2vec_parameters_change_walks(self, small_graph):
        uniform = RandomWalker(small_graph, walk_length=20, seed=5).walk_from(0)
        biased = RandomWalker(
            small_graph, walk_length=20, return_param=4.0, inout_param=0.25, seed=5
        ).walk_from(0)
        # same seed but different transition kernels should (almost surely) diverge
        assert uniform != biased

    def test_biased_walk_edges_are_valid(self, small_graph):
        walker = RandomWalker(
            small_graph, walk_length=15, return_param=0.5, inout_param=2.0, seed=2
        )
        walk = walker.walk_from(1)
        for a, b in zip(walk, walk[1:], strict=False):
            assert small_graph.has_edge(a, b)


class TestCooccurrencePairs:
    def test_pair_extraction_window_one(self, small_graph):
        walker = RandomWalker(small_graph, walk_length=4, seed=0)
        pairs = walker.cooccurrence_pairs([[0, 1, 2, 3]], window_size=1)
        expected = {(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2)}
        assert {tuple(p) for p in pairs.tolist()} == expected

    def test_larger_window_produces_more_pairs(self, small_graph):
        walker = RandomWalker(small_graph, walk_length=10, seed=0)
        walks = walker.generate_walks(1)
        small = walker.cooccurrence_pairs(walks, window_size=1)
        large = walker.cooccurrence_pairs(walks, window_size=4)
        assert len(large) > len(small)

    def test_empty_walks_give_empty_array(self, small_graph):
        walker = RandomWalker(small_graph, walk_length=5, seed=0)
        pairs = walker.cooccurrence_pairs([], window_size=2)
        assert pairs.shape == (0, 2)

    def test_invalid_window_raises(self, small_graph):
        walker = RandomWalker(small_graph, walk_length=5, seed=0)
        with pytest.raises(GraphError):
            walker.cooccurrence_pairs([[0, 1]], window_size=0)
