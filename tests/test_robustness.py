"""Chaos suite for the robustness layer (PR 10).

Covers the fault-injection registry (every registered point fires under a
plan and is provably inert without one), the shared retry policy, the
checkpoint store, crash→restart→finish hogwild supervision with
conservative privacy charging, the hardened batching server
(deadline / overload / circuit breaker / bounded drain), orchestrator
cell quarantine, and the privacy ledger's torn-write recovery — including
a real kill-mid-append subprocess drill via ``REPRO_FAULTS``.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.config import PrivacyConfig, TrainingConfig
from repro.embedding import SEGEmbTrainer, SEPrivGEmbTrainer
from repro.exceptions import (
    CircuitOpenError,
    ConfigurationError,
    HogwildDegradedError,
    LedgerTornError,
    PrivacyError,
    ServerClosedError,
    ServerOverloadedError,
    ServerTimeoutError,
    TrainingError,
)
from repro.experiments import RunStore, execute
from repro.experiments.orchestrator import RunSpec, run_spec
from repro.graph import generators
from repro.privacy.ledger import LedgerRepairWarning, PrivacyLedger
from repro.proximity import get_proximity
from repro.robustness import (
    FAULT_POINTS,
    CheckpointStore,
    FaultPlan,
    FaultRule,
    RetryPolicy,
    ShardCheckpoint,
    SupervisorPolicy,
    get_active_plan,
    parse_fault_spec,
)
from repro.robustness.faults import CRASH_EXIT_CODE
from repro.serving import BatchingServer, QueryEngine
from repro.utils.fileio import atomic_write_path

REPO_ROOT = Path(__file__).resolve().parent.parent

FORK_ONLY = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="hogwild workers require the fork start method",
)

TRAIN = TrainingConfig(
    embedding_dim=8, epochs=40, batch_size=16, learning_rate=0.05, negative_samples=2
)
#: generous budget so the crash drill's conservative over-charge never
#: interacts with budget truncation
PRIVACY = PrivacyConfig(
    epsilon=8.0, delta=1e-5, noise_multiplier=2.0, clipping_threshold=1.0
)

FAST_TRAINING = TrainingConfig(
    embedding_dim=8, batch_size=24, learning_rate=0.1, negative_samples=3, epochs=4
)


def _graph(seed: int = 1, nodes: int = 150):
    return generators.barabasi_albert_graph(nodes, 3, seed=seed)


def _sleep_spec(seed: int = 0) -> RunSpec:
    return RunSpec(
        kind="sleep",
        method="sleep",
        dataset="synthetic",
        dataset_fingerprint="",
        training=FAST_TRAINING,
        privacy=PrivacyConfig(epsilon=2.0),
        repeats=1,
        seed=seed,
        options=(("duration", 0.0),),
        metric="sleep",
    )


@pytest.fixture(autouse=True)
def _no_leaked_plan():
    """A test that dies mid-plan must not poison the rest of the suite."""
    yield
    from repro.robustness import faults

    faults._ACTIVE = None


@pytest.fixture(scope="module")
def embeddings():
    return np.random.default_rng(7).standard_normal((64, 8))


@pytest.fixture(scope="module")
def engine(embeddings):
    return QueryEngine(embeddings, max_batch=32)


# --------------------------------------------------------------------- #
# fault rules and plans
# --------------------------------------------------------------------- #
class TestFaultRule:
    def test_unknown_action_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault action"):
            FaultRule("fileio.atomic_write", "explode")

    def test_unknown_exception_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault exception"):
            FaultRule("fileio.atomic_write", "raise", exception="SystemExit")

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError, match="delay"):
            FaultRule("fileio.atomic_write", "stall", delay=-1.0)

    def test_where_matches_equality_and_substring(self):
        rule = FaultRule(
            "serving.engine.query", "raise", where={"metric": "cos", "k": 3}
        )
        assert rule.matches("serving.engine.query", {"metric": "cosine", "k": 3})
        assert not rule.matches("serving.engine.query", {"metric": "dot", "k": 3})
        assert not rule.matches("serving.engine.query", {"metric": "cosine", "k": 4})
        # a missing context key never matches
        assert not rule.matches("serving.engine.query", {"metric": "cosine"})
        # a different point never matches
        assert not rule.matches("fileio.atomic_write", {"metric": "cosine", "k": 3})

    def test_times_budget_exhausts(self):
        plan = FaultPlan([FaultRule("fileio.atomic_write", "raise", times=2)])
        with plan:
            for _ in range(2):
                with pytest.raises(OSError, match="injected fault"):
                    plan.hit("fileio.atomic_write")
            plan.hit("fileio.atomic_write")  # budget spent: inert
        assert plan.fired == [2]

    def test_unlimited_times(self):
        plan = FaultPlan([FaultRule("fileio.atomic_write", "slow", times=-1, delay=0.0)])
        with plan:
            for _ in range(5):
                plan.hit("fileio.atomic_write")
        assert plan.fired_total == 5

    def test_plans_do_not_nest(self):
        with FaultPlan([]):
            with pytest.raises(ConfigurationError, match="do not nest"):
                FaultPlan([]).__enter__()

    def test_rules_accept_mappings(self):
        plan = FaultPlan([{"point": "fileio.atomic_write", "action": "raise"}])
        assert plan.rules[0].point == "fileio.atomic_write"


class TestFaultSpecParsing:
    def test_full_rule_round_trips(self):
        plan = parse_fault_spec(
            "serving.engine.query:raise:metric=cosine,k=3,times=2,delay=0.1,"
            "exception=RuntimeError; ledger.append:crash"
        )
        first, second = plan.rules
        assert first.point == "serving.engine.query"
        assert first.action == "raise"
        assert dict(first.where) == {"metric": "cosine", "k": 3}
        assert first.times == 2 and first.delay == 0.1
        assert first.exception == "RuntimeError"
        assert second.point == "ledger.append" and second.action == "crash"

    def test_values_are_coerced(self):
        plan = parse_fault_spec("p:raise:a=5,b=0.5,c=text")
        assert dict(plan.rules[0].where) == {"a": 5, "b": 0.5, "c": "text"}

    def test_malformed_specs_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed fault rule"):
            parse_fault_spec("no-action-here")
        with pytest.raises(ConfigurationError, match="malformed fault rule"):
            parse_fault_spec("p:raise:not_a_pair")

    def test_env_spec_activates_lazily(self, monkeypatch):
        from repro.robustness import faults

        monkeypatch.setattr(faults, "_ACTIVE", None)
        monkeypatch.setattr(faults, "_ENV_CHECKED", False)
        monkeypatch.setenv("REPRO_FAULTS", "fileio.atomic_write:raise:times=3")
        plan = get_active_plan()
        assert plan is not None
        assert plan.rules[0].point == "fileio.atomic_write"
        assert plan.rules[0].times == 3


# --------------------------------------------------------------------- #
# every registered fault point fires on its real code path
# --------------------------------------------------------------------- #
def _fire_fileio(tmp_path, engine):
    target = tmp_path / "payload.json"
    plan = FaultPlan([FaultRule("fileio.atomic_write", "raise")])
    with plan:
        with pytest.raises(OSError, match="injected fault"):
            with atomic_write_path(target) as tmp:
                tmp.write_text("{}")
    assert plan.fired_total == 1
    assert not target.exists()  # the publish step failed: nothing appears


def _fire_engine_query(tmp_path, engine):
    plan = FaultPlan(
        [FaultRule("serving.engine.query", "raise", exception="RuntimeError")]
    )
    with plan:
        with pytest.raises(RuntimeError, match="injected fault"):
            engine.top_k([1, 2], 3)
    assert plan.fired_total == 1


def _fire_orchestrator_cell(tmp_path, engine):
    plan = FaultPlan([FaultRule("orchestrator.cell", "raise", where={"kind": "sleep"})])
    with plan:
        with pytest.raises(OSError, match="injected fault"):
            run_spec(_sleep_spec())
    assert plan.fired_total == 1


def _fire_ledger_append(tmp_path, engine):
    path = tmp_path / "ledger.json"
    ledger = PrivacyLedger(path)
    ledger.record_delta("fp-a", "fp-b", "delta-1")  # first write: atomic rewrite
    plan = FaultPlan([FaultRule("ledger.append", "raise", where={"path": "ledger"})])
    with plan:
        with pytest.raises(OSError, match="injected fault"):
            ledger.record_delta("fp-b", "fp-c", "delta-2")
    assert plan.fired_total == 1


def _fire_hogwild_step(tmp_path, engine):
    if multiprocessing.get_start_method() != "fork":
        pytest.skip("hogwild workers require the fork start method")
    trainer = SEGEmbTrainer(
        proximity=get_proximity("degree"), config=TRAIN, seed=5, workers=2
    )
    plan = FaultPlan(
        [
            FaultRule(
                "hogwild.worker.step",
                "raise",
                where={"shard": 0, "step": 2},
                exception="RuntimeError",
            )
        ]
    )
    with plan:
        # unsupervised: the worker failure fails the run, naming the shard
        with pytest.raises(TrainingError, match="injected fault"):
            trainer.fit(_graph())


_POINT_EXERCISERS = {
    "fileio.atomic_write": _fire_fileio,
    "serving.engine.query": _fire_engine_query,
    "orchestrator.cell": _fire_orchestrator_cell,
    "ledger.append": _fire_ledger_append,
    "hogwild.worker.step": _fire_hogwild_step,
}


class TestEveryPointFires:
    def test_registry_is_fully_covered(self):
        # completeness pin: registering a new fault point without adding a
        # firing exerciser here must fail the suite
        assert set(_POINT_EXERCISERS) == set(FAULT_POINTS)

    @pytest.mark.parametrize("point", sorted(_POINT_EXERCISERS))
    def test_point_fires_under_a_plan(self, point, tmp_path, engine):
        _POINT_EXERCISERS[point](tmp_path, engine)


# --------------------------------------------------------------------- #
# inertness: an active plan that matches nothing changes no bytes
# --------------------------------------------------------------------- #
def _non_matching_plan() -> FaultPlan:
    return FaultPlan(
        [FaultRule("hogwild.worker.step", "crash", where={"shard": 10**9})]
    )


class TestInertness:
    def test_fileio_bytes_identical(self, tmp_path):
        plain, instrumented = tmp_path / "a.json", tmp_path / "b.json"
        with atomic_write_path(plain) as tmp:
            tmp.write_text('{"x": 1}')
        plan = _non_matching_plan()
        with plan:
            with atomic_write_path(instrumented) as tmp:
                tmp.write_text('{"x": 1}')
        assert plan.fired_total == 0
        assert instrumented.read_bytes() == plain.read_bytes()

    def test_engine_results_identical(self, engine):
        baseline = engine.top_k([0, 5, 9], 4)
        plan = _non_matching_plan()
        with plan:
            instrumented = engine.top_k([0, 5, 9], 4)
        assert plan.fired_total == 0
        assert np.array_equal(baseline.ids, instrumented.ids)
        assert np.array_equal(baseline.scores, instrumented.scores)

    def test_ledger_bytes_identical(self, tmp_path):
        def build(path: Path) -> None:
            ledger = PrivacyLedger(path)
            ledger.record_delta("fp-a", "fp-b", "delta-1")
            ledger.record_delta("fp-b", "fp-c", "delta-2")

        build(tmp_path / "plain.json")
        plan = _non_matching_plan()
        with plan:
            build(tmp_path / "instrumented.json")
        assert plan.fired_total == 0
        assert (tmp_path / "instrumented.json").read_bytes() == (
            tmp_path / "plain.json"
        ).read_bytes()

    def test_serial_training_bitwise_identical(self):
        graph = _graph(nodes=80)

        def fit():
            trainer = SEGEmbTrainer(
                proximity=get_proximity("degree"), config=TRAIN, seed=5
            )
            trainer.fit(graph)
            return trainer.embeddings_

        baseline = fit()
        plan = _non_matching_plan()
        with plan:
            instrumented = fit()
        assert plan.fired_total == 0
        assert np.array_equal(baseline, instrumented)


# --------------------------------------------------------------------- #
# retry policy
# --------------------------------------------------------------------- #
class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_delay=-0.1)

    def test_delays_are_seeded_and_reproducible(self):
        policy = RetryPolicy(max_attempts=5, base_delay=0.1, jitter=0.5, seed=3)
        first, second = list(policy.delays()), list(policy.delays())
        assert first == second
        assert len(first) == 4
        assert all(delay <= policy.max_delay for delay in first)

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(
            max_attempts=4, base_delay=0.1, multiplier=2.0, max_delay=10.0, jitter=0.0
        )
        assert list(policy.delays()) == pytest.approx([0.1, 0.2, 0.4])

    def test_call_retries_transients_then_succeeds(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient hiccup")
            return "ok"

        pauses: list[float] = []
        seen: list[tuple[int, str]] = []
        policy = RetryPolicy(max_attempts=3, base_delay=0.01, seed=7)
        result = policy.call(
            flaky,
            sleep=pauses.append,
            on_retry=lambda attempt, exc, pause: seen.append((attempt, str(exc))),
        )
        assert result == "ok" and calls["n"] == 3
        assert pauses == list(policy.delays())
        assert seen == [(1, "transient hiccup"), (2, "transient hiccup")]

    def test_non_retryable_fails_fast(self):
        calls = {"n": 0}

        def poisoned():
            calls["n"] += 1
            raise ValueError("deterministic bug")

        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=5).call(poisoned, sleep=lambda _: None)
        assert calls["n"] == 1

    def test_exhaustion_raises_the_final_failure(self):
        calls = {"n": 0}

        def always_failing():
            calls["n"] += 1
            raise OSError("still broken")

        with pytest.raises(OSError, match="still broken"):
            RetryPolicy(max_attempts=2).call(always_failing, sleep=lambda _: None)
        assert calls["n"] == 2

    def test_atomic_write_retries_the_publish(self, tmp_path):
        target = tmp_path / "retried.json"
        plan = FaultPlan([FaultRule("fileio.atomic_write", "raise", times=1)])
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        with plan:
            with atomic_write_path(target, retry=policy) as tmp:
                tmp.write_text('{"published": true}')
        assert plan.fired_total == 1
        assert target.read_text() == '{"published": true}'


# --------------------------------------------------------------------- #
# checkpoint store
# --------------------------------------------------------------------- #
class TestCheckpointStore:
    def _checkpoint(self) -> ShardCheckpoint:
        rng = np.random.default_rng(3)
        rng.random(10)
        return ShardCheckpoint(
            shard=1,
            steps=10,
            incarnation=0,
            rng_state=rng.bit_generator.state,
            losses=[0.5, 0.25],
        )

    def test_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        saved = self._checkpoint()
        store.save(saved)
        loaded = store.load(1)
        assert loaded is not None
        assert loaded.steps == saved.steps
        assert loaded.incarnation == saved.incarnation
        assert loaded.losses == saved.losses
        assert loaded.accountant_steps == saved.steps
        # the restored stream continues exactly where the saved one stopped
        resumed = np.random.default_rng()  # repro-lint: disable=RNG001 -- placeholder generator; its state is immediately overwritten with the checkpointed stream below
        resumed.bit_generator.state = loaded.rng_state
        reference = np.random.default_rng(3)
        reference.random(10)
        assert resumed.random() == reference.random()

    def test_missing_and_corrupt_degrade_to_none(self, tmp_path):
        store = CheckpointStore(tmp_path)
        assert store.load(0) is None
        store.path_for(2).write_text("{not json")
        assert store.load(2) is None
        store.path_for(3).write_text('{"format": "something-else"}')
        assert store.load(3) is None

    def test_clear_removes_checkpoints(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(self._checkpoint())
        assert store.path_for(1).exists()
        store.clear()
        assert not store.path_for(1).exists()

    def test_supervisor_policy_validation(self):
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(max_restarts=-1)
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(checkpoint_every=-1)
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(worker_timeout=0.0)
        with pytest.raises(ConfigurationError):
            SupervisorPolicy(backoff_base=-0.1)


# --------------------------------------------------------------------- #
# supervised hogwild: crash -> restart -> finish
# --------------------------------------------------------------------- #
@FORK_ONLY
class TestSupervisedHogwild:
    def _private(self, resilience=None) -> SEPrivGEmbTrainer:
        return SEPrivGEmbTrainer(
            proximity=get_proximity("degree"),
            training_config=TRAIN,
            privacy_config=PRIVACY,
            seed=5,
            workers=2,
            hogwild_resilience=resilience,
        )

    def test_crashed_private_fit_recovers_and_overcharges(self, tmp_path):
        graph = _graph()
        baseline = self._private()
        baseline.fit(graph)

        policy = SupervisorPolicy(
            max_restarts=2,
            checkpoint_every=5,
            checkpoint_dir=tmp_path / "ckpt",
            backoff_base=0.01,
            backoff_max=0.05,
        )
        crashed = self._private(policy)
        plan = FaultPlan(
            [
                FaultRule(
                    "hogwild.worker.step",
                    "crash",
                    where={"shard": 0, "step": 12, "incarnation": 0},
                )
            ]
        )
        with plan:
            crashed.fit(graph)

        run = crashed.last_hogwild_run
        assert run is not None and run.restarts == 1
        # shard 0's second incarnation resumed from the step-10 checkpoint
        assert any(r.shard == 0 and r.incarnation == 1 for r in run.reports)
        # every shard still delivered its full target
        assert sum(r.steps for r in run.reports) == sum(
            r.steps for r in baseline.last_worker_reports
        )
        # conservative accounting: the crashed incarnation's full remaining
        # allotment is charged on top of the work actually redone
        assert sum(run.accountant_steps) > sum(r.steps for r in run.reports)
        assert (
            crashed.result_.privacy_spent.steps
            > baseline.result_.privacy_spent.steps
        )
        assert (
            crashed.result_.privacy_spent.epsilon
            >= baseline.result_.privacy_spent.epsilon
        )
        assert np.isfinite(crashed.embeddings_).all()
        # embeddings converge to the same scale as the uncrashed run
        assert float(np.linalg.norm(crashed.embeddings_)) == pytest.approx(
            float(np.linalg.norm(baseline.embeddings_)), rel=0.5
        )
        # a user-supplied checkpoint directory keeps its evidence
        assert sorted(p.name for p in (tmp_path / "ckpt").glob("shard-*.json"))

    def test_persistent_crash_degrades_with_named_shards(self):
        graph = _graph()
        policy = SupervisorPolicy(
            max_restarts=1, checkpoint_every=0, backoff_base=0.01, backoff_max=0.02
        )
        trainer = SEGEmbTrainer(
            proximity=get_proximity("degree"),
            config=TRAIN,
            seed=5,
            workers=2,
            hogwild_resilience=policy,
        )
        plan = FaultPlan(
            [FaultRule("hogwild.worker.step", "crash", where={"shard": 0}, times=-1)]
        )
        with plan:
            with pytest.raises(HogwildDegradedError) as excinfo:
                trainer.fit(graph)
        exc = excinfo.value
        assert exc.lost_shards == [0]
        assert exc.recovered_shards == [1]
        assert "shard 0" in str(exc)
        # 2 dead incarnations x 20 steps charged + shard 1's 20 real steps
        assert sum(exc.charged_steps) >= TRAIN.epochs
        assert exc.partial is not None

    def test_stalled_worker_is_killed_and_restarted(self, tmp_path):
        graph = _graph()
        policy = SupervisorPolicy(
            max_restarts=1,
            checkpoint_every=4,
            checkpoint_dir=tmp_path / "ckpt",
            worker_timeout=0.8,
            backoff_base=0.01,
            backoff_max=0.02,
        )
        trainer = SEGEmbTrainer(
            proximity=get_proximity("degree"),
            config=TRAIN,
            seed=5,
            workers=2,
            hogwild_resilience=policy,
        )
        plan = FaultPlan(
            [
                FaultRule(
                    "hogwild.worker.step",
                    "stall",
                    where={"shard": 0, "step": 10, "incarnation": 0},
                    delay=30.0,
                )
            ]
        )
        with plan:
            trainer.fit(graph)
        run = trainer.last_hogwild_run
        assert run is not None and run.restarts == 1
        assert sum(r.steps for r in run.reports) == TRAIN.epochs
        assert np.isfinite(trainer.embeddings_).all()

    def test_degraded_private_fit_still_charges_the_ledger_path(self):
        # the accountant is charged the conservative amounts even when the
        # run degrades — "noise already released is released"
        graph = _graph()
        policy = SupervisorPolicy(
            max_restarts=0, checkpoint_every=0, backoff_base=0.01
        )
        trainer = self._private(policy)
        plan = FaultPlan(
            [FaultRule("hogwild.worker.step", "crash", where={"shard": 0}, times=-1)]
        )
        with plan:
            with pytest.raises(HogwildDegradedError) as excinfo:
                trainer.fit(graph)
        assert trainer.accountant.steps == sum(excinfo.value.charged_steps)
        assert trainer.accountant.steps > 0


# --------------------------------------------------------------------- #
# hardened batching server
# --------------------------------------------------------------------- #
class TestServerRobustness:
    def test_deadline_expires_then_service_resumes(self, engine):
        async def scenario():
            async with BatchingServer(
                engine, max_delay=0.001, request_timeout=0.05
            ) as server:
                plan = FaultPlan(
                    [FaultRule("serving.engine.query", "stall", delay=0.3)]
                )
                with plan:
                    with pytest.raises(ServerTimeoutError):
                        await server.top_k(3, k=2)
                # the stalled batch finishes in its executor thread; a fresh
                # request afterwards is served normally
                ids, scores = await server.top_k(3, k=2, timeout=5.0)
                assert len(ids) == 2 and len(scores) == 2
                return server.stats

        stats = asyncio.run(scenario())
        assert stats.timeouts == 1
        assert stats.health()["timeouts"] == 1

    def test_overload_fast_fails(self, engine):
        async def scenario():
            server = BatchingServer(
                engine, max_delay=5.0, max_batch=64, max_pending=2
            )
            async with server:
                waiters = [
                    asyncio.ensure_future(server.top_k(node, k=2))
                    for node in (1, 2)
                ]
                await asyncio.sleep(0)  # let the two requests enqueue
                with pytest.raises(ServerOverloadedError):
                    await server.top_k(3, k=2)
                rejected = server.stats.rejected_overload
            # exiting the context drains: the queued waiters are still served
            answers = await asyncio.gather(*waiters)
            return rejected, answers, server.stats

        rejected, answers, stats = asyncio.run(scenario())
        assert rejected == 1
        assert len(answers) == 2
        assert stats.health()["rejected_overload"] == 1

    def test_circuit_breaker_opens_half_opens_and_closes(self, engine):
        async def scenario():
            async with BatchingServer(
                engine, max_delay=0.0, breaker_threshold=1, breaker_reset=0.05
            ) as server:
                plan = FaultPlan(
                    [
                        FaultRule(
                            "serving.engine.query", "raise", exception="RuntimeError"
                        )
                    ]
                )
                with plan:
                    with pytest.raises(RuntimeError, match="injected fault"):
                        await server.top_k(1, k=2)
                    assert server.stats.breaker_state == "open"
                    with pytest.raises(CircuitOpenError):
                        await server.top_k(2, k=2)
                    await asyncio.sleep(0.06)
                    # half-open admits a probe; the rule's budget is spent,
                    # so the probe succeeds and closes the breaker
                    ids, _ = await server.top_k(3, k=2)
                    assert len(ids) == 2
                return server.stats

        stats = asyncio.run(scenario())
        assert stats.engine_failures == 1
        assert stats.breaker_opened == 1
        assert stats.rejected_open == 1
        assert stats.breaker_state == "closed"

    def test_bounded_stop_abandons_waiters(self, engine):
        async def scenario():
            server = BatchingServer(engine, max_delay=0.001)
            await server.start()
            plan = FaultPlan(
                [FaultRule("serving.engine.query", "stall", delay=0.4, times=-1)]
            )
            with plan:
                waiter = asyncio.ensure_future(server.top_k(1, k=2))
                await asyncio.sleep(0.05)  # the batch is now in flight
                await server.stop(drain_timeout=0.05)
            with pytest.raises(ServerClosedError):
                await waiter
            return server.stats

        stats = asyncio.run(scenario())
        assert stats.abandoned >= 1
        assert stats.health()["abandoned"] >= 1

    def test_request_after_bounded_stop_raises_cleanly(self, engine):
        async def scenario():
            server = BatchingServer(engine, max_delay=0.001, drain_timeout=0.5)
            async with server:
                ids, _ = await server.top_k(1, k=2)
                assert len(ids) == 2
            with pytest.raises(RuntimeError, match="not running"):
                await server.top_k(2, k=2)

        asyncio.run(scenario())


# --------------------------------------------------------------------- #
# orchestrator retry + quarantine
# --------------------------------------------------------------------- #
class TestOrchestratorQuarantine:
    def test_transient_cell_failure_is_retried_to_success(self):
        spec = _sleep_spec()
        plan = FaultPlan([FaultRule("orchestrator.cell", "raise", times=1)])
        policy = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        with plan:
            report = execute([spec], retry=policy)
        assert plan.fired_total == 1
        assert report.quarantined == 0 and report.failures == []
        assert "error" not in report.results[0]

    def test_poison_cell_is_quarantined_not_stored(self, tmp_path):
        spec = _sleep_spec()
        store = RunStore(tmp_path / "store")
        plan = FaultPlan([FaultRule("orchestrator.cell", "raise", times=-1)])
        policy = RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
        with plan:
            report = execute([spec], store=store, retry=policy)
        assert report.quarantined == 1
        assert report.results[0]["quarantined"] is True
        assert "injected fault" in report.results[0]["error"]
        [failure] = report.failures
        assert failure["spec"]["kind"] == "sleep"
        assert failure["attempts"] == 2
        assert "quarantined=1" in report.summary()
        # a quarantined slot must never be published as a finished cell
        assert spec.fingerprint() not in store

    def test_non_retryable_failure_propagates(self):
        spec = _sleep_spec()
        plan = FaultPlan(
            [FaultRule("orchestrator.cell", "raise", exception="ValueError", times=-1)]
        )
        with plan:
            with pytest.raises(ValueError, match="injected fault"):
                execute([spec], retry=RetryPolicy(max_attempts=3, base_delay=0.0))

    def test_without_retry_policy_failures_stay_fail_fast(self):
        spec = _sleep_spec()
        plan = FaultPlan([FaultRule("orchestrator.cell", "raise", times=-1)])
        with plan:
            with pytest.raises(OSError, match="injected fault"):
                execute([spec])


# --------------------------------------------------------------------- #
# ledger torn-write recovery
# --------------------------------------------------------------------- #
class TestLedgerTornWrite:
    def _ledger_with_two_entries(self, path: Path) -> PrivacyLedger:
        ledger = PrivacyLedger(path)
        ledger.record_delta("fp-a", "fp-b", "delta-1")
        ledger.record_delta("fp-b", "fp-c", "delta-2")
        return ledger

    def test_torn_tail_detected_and_repairable(self, tmp_path):
        path = tmp_path / "ledger.json"
        ledger = self._ledger_with_two_entries(path)
        plan = FaultPlan([FaultRule("ledger.append", "raise")])
        with plan:
            with pytest.raises(OSError, match="injected fault"):
                ledger.record_delta("fp-c", "fp-d", "delta-3")
        # the interrupted append provably tore the final line
        assert not path.read_text().endswith("\n")

        with pytest.raises(LedgerTornError, match="repair=True"):
            PrivacyLedger(path)

        with pytest.warns(LedgerRepairWarning, match="torn"):
            repaired = PrivacyLedger(path, repair=True)
        assert len(repaired) == 2
        assert repaired.dataset_fingerprint == "fp-c"
        # the truncated ledger is whole again: appends and reloads verify
        repaired.record_delta("fp-c", "fp-e", "delta-4")
        assert len(PrivacyLedger(path)) == 3

    def test_mid_file_corruption_is_not_repairable(self, tmp_path):
        path = tmp_path / "ledger.json"
        self._ledger_with_two_entries(path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1][: len(lines[1]) // 2]  # tear a NON-final record
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(PrivacyError, match="malformed ledger"):
            PrivacyLedger(path, repair=True)

    @FORK_ONLY
    def test_kill_mid_append_subprocess_drill(self, tmp_path):
        path = tmp_path / "ledger.json"
        script = (
            "import sys\n"
            "from repro.privacy.ledger import PrivacyLedger\n"
            "ledger = PrivacyLedger(sys.argv[1])\n"
            "ledger.record_delta('fp-a', 'fp-b', 'delta-1')\n"
            "ledger.record_delta('fp-b', 'fp-c', 'delta-2')\n"
            "raise SystemExit('the crash rule should have killed this process')\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env["REPRO_FAULTS"] = "ledger.append:crash"
        proc = subprocess.run(
            [sys.executable, "-c", script, str(path)],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == CRASH_EXIT_CODE, proc.stderr

        with pytest.raises(LedgerTornError):
            PrivacyLedger(path)
        with pytest.warns(LedgerRepairWarning):
            repaired = PrivacyLedger(path, repair=True)
        # the first entry survived the kill; the torn second one is gone
        assert len(repaired) == 1
        assert repaired.dataset_fingerprint == "fp-b"
