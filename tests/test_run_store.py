"""Tests for the content-addressed RunStore (round-trip, resume, corruption)."""

from __future__ import annotations

import json
import os

import pytest

from repro.exceptions import OrchestrationError
from repro.experiments import RunStore

KEY_A = "a" * 64
KEY_B = "b" * 64
RESULT = {"metric": "strucequ", "mean": 0.5, "std": 0.1, "repeats": 3}


class TestMemoryTier:
    def test_round_trip(self):
        store = RunStore()
        assert store.get(KEY_A) is None
        store.put(KEY_A, RESULT)
        assert store.get(KEY_A) == RESULT
        assert KEY_A in store
        assert KEY_B not in store
        assert store.hits == 1 and store.misses == 1 and store.stores == 1

    def test_get_returns_a_copy(self):
        store = RunStore()
        store.put(KEY_A, RESULT)
        fetched = store.get(KEY_A)
        fetched["mean"] = -99.0
        assert store.get(KEY_A)["mean"] == 0.5

    def test_rejects_malformed_keys(self):
        store = RunStore()
        for bad in ("abc", KEY_A[:-1], KEY_A.upper(), 7):
            with pytest.raises(OrchestrationError):
                store.get(bad)

    def test_clear_resets(self):
        store = RunStore()
        store.put(KEY_A, RESULT)
        store.clear()
        assert len(store) == 0
        assert store.stores == 0


class TestDiskTier:
    def test_round_trip_across_instances(self, tmp_path):
        RunStore(tmp_path).put(KEY_A, RESULT, spec={"kind": "strucequ"})
        fresh = RunStore(tmp_path)
        assert fresh.get(KEY_A) == RESULT
        assert KEY_A in fresh.keys()
        assert len(fresh) == 1

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        store = RunStore(tmp_path)
        store.put(KEY_A, RESULT)
        names = [p.name for p in tmp_path.iterdir()]
        assert names == [f"{KEY_A}.json"]

    def test_corrupt_payload_degrades_to_miss_and_is_dropped(self, tmp_path):
        store = RunStore(tmp_path)
        path = tmp_path / f"{KEY_A}.json"
        path.write_text("{ not json at all")
        assert store.get(KEY_A) is None
        assert not path.exists()

    def test_contains_agrees_with_get_on_corrupt_entries(self, tmp_path):
        # containment must validate the payload, not just stat the file
        store = RunStore(tmp_path)
        (tmp_path / f"{KEY_A}.json").write_text("{ not json at all")
        assert KEY_A not in store
        store.put(KEY_B, RESULT)
        assert KEY_B in RunStore(tmp_path)

    def test_foreign_payload_is_rejected(self, tmp_path):
        store = RunStore(tmp_path)
        # valid JSON, wrong schema (key mismatch)
        (tmp_path / f"{KEY_A}.json").write_text(
            json.dumps({"version": 1, "key": KEY_B, "result": RESULT})
        )
        assert store.get(KEY_A) is None

    def test_wrong_version_is_rejected(self, tmp_path):
        store = RunStore(tmp_path)
        (tmp_path / f"{KEY_A}.json").write_text(
            json.dumps({"version": 999, "key": KEY_A, "result": RESULT})
        )
        assert store.get(KEY_A) is None

    def test_clear_leaves_foreign_files_alone(self, tmp_path):
        store = RunStore(tmp_path)
        store.put(KEY_A, RESULT)
        foreign = tmp_path / "notes.json"
        foreign.write_text("{}")
        store.clear()
        assert foreign.exists()
        assert not (tmp_path / f"{KEY_A}.json").exists()

    def test_directory_created_lazily(self, tmp_path):
        directory = tmp_path / "nested" / "runs"
        store = RunStore(directory)
        assert not directory.exists()
        store.put(KEY_A, RESULT)
        assert directory.exists()

    def test_concurrent_writers_do_not_interleave(self, tmp_path):
        # two stores writing the same key: last atomic rename wins, file valid
        one, two = RunStore(tmp_path), RunStore(tmp_path)
        one.put(KEY_A, {"mean": 1.0})
        two.put(KEY_A, {"mean": 2.0})
        assert RunStore(tmp_path).get(KEY_A) in ({"mean": 1.0}, {"mean": 2.0})

    def test_unwritable_directory_degrades_gracefully(self, tmp_path):
        directory = tmp_path / "runs"
        directory.mkdir()
        os.chmod(directory, 0o500)
        try:
            store = RunStore(directory)
            store.put(KEY_A, RESULT)  # warning, not crash
            assert store.get(KEY_A) == RESULT  # memory tier still serves it
        finally:
            os.chmod(directory, 0o700)
