"""Tests for Algorithm 1 (disjoint subgraphs) and the negative samplers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Graph, GraphError
from repro.graph.sampling import (
    EdgeSubgraph,
    ProximityNegativeSampler,
    SubgraphSampler,
    UnigramNegativeSampler,
    generate_disjoint_subgraphs,
)
from repro.proximity import DeepWalkProximity


class TestUnigramNegativeSampler:
    def test_negatives_are_never_neighbors(self, small_graph):
        sampler = UnigramNegativeSampler(small_graph, seed=0)
        for node in range(0, small_graph.num_nodes, 7):
            negatives = sampler.sample_negatives(node, 5)
            assert negatives.shape == (5,)
            neighbor_set = set(small_graph.neighbors(node).tolist())
            for neg in negatives:
                assert int(neg) not in neighbor_set
                assert int(neg) != node

    def test_higher_degree_nodes_sampled_more_often(self, star_graph):
        # In a star the centre has degree 5, leaves degree 1; sampling negatives
        # for a leaf should hit the centre more often than any other leaf.
        sampler = UnigramNegativeSampler(star_graph, power=1.0, seed=0)
        counts = np.zeros(star_graph.num_nodes)
        for _ in range(300):
            negatives = sampler.sample_negatives(1, 1)
            counts[negatives[0]] += 1
        # node 0 (centre) is a neighbour of node 1, so it can never appear;
        # remaining mass is spread over the other leaves roughly uniformly.
        assert counts[0] == 0
        assert counts[1] == 0

    def test_complete_graph_raises(self):
        complete = Graph(3, [(0, 1), (0, 2), (1, 2)])
        sampler = UnigramNegativeSampler(complete, seed=0)
        with pytest.raises(GraphError):
            sampler.sample_negatives(0, 1)

    def test_rejects_negative_count(self, small_graph):
        sampler = UnigramNegativeSampler(small_graph, seed=0)
        with pytest.raises(GraphError):
            sampler.sample_negatives(0, -1)


class TestProximityNegativeSampler:
    def test_negative_probability_formula(self, small_graph):
        proximity = DeepWalkProximity(window_size=2).compute(small_graph)
        sampler = ProximityNegativeSampler(
            small_graph,
            proximity_row_sums=proximity.row_sums,
            min_positive_proximity=proximity.min_positive,
            seed=0,
        )
        node = 0
        expected = proximity.min_positive / proximity.row_sums[node]
        assert sampler.negative_probability(node) == pytest.approx(expected)
        # Theorem 3 requires the mass to be a valid probability.
        assert 0.0 < sampler.negative_probability(node) < 1.0

    def test_samples_avoid_neighbors(self, small_graph):
        proximity = DeepWalkProximity(window_size=2).compute(small_graph)
        sampler = ProximityNegativeSampler(
            small_graph, proximity.row_sums, proximity.min_positive, seed=1
        )
        negatives = sampler.sample_negatives(3, 10)
        neighbor_set = set(small_graph.neighbors(3).tolist())
        assert all(int(n) not in neighbor_set for n in negatives)

    def test_rejects_bad_inputs(self, small_graph):
        proximity = DeepWalkProximity(window_size=2).compute(small_graph)
        with pytest.raises(GraphError):
            ProximityNegativeSampler(small_graph, proximity.row_sums[:-1], 0.1)
        with pytest.raises(GraphError):
            ProximityNegativeSampler(small_graph, proximity.row_sums, 0.0)


class TestBulkNegativeSampling:
    def test_bulk_shape_and_validity(self, small_graph):
        sampler = UnigramNegativeSampler(small_graph, seed=0)
        centers = small_graph.edges[:, 0]
        negatives = sampler.sample_negatives_bulk(centers, 4)
        assert negatives.shape == (centers.shape[0], 4)
        for row, center in enumerate(centers):
            neighbor_set = set(small_graph.neighbors(int(center)).tolist())
            for neg in negatives[row]:
                assert int(neg) not in neighbor_set
                assert int(neg) != int(center)

    def test_bulk_deterministic_per_seed(self, small_graph):
        centers = small_graph.edges[:20, 0]
        first = UnigramNegativeSampler(small_graph, seed=7).sample_negatives_bulk(centers, 3)
        second = UnigramNegativeSampler(small_graph, seed=7).sample_negatives_bulk(centers, 3)
        np.testing.assert_array_equal(first, second)

    def test_bulk_zero_count(self, small_graph):
        sampler = UnigramNegativeSampler(small_graph, seed=0)
        assert sampler.sample_negatives_bulk(np.array([0, 1]), 0).shape == (2, 0)

    def test_duck_typed_sampler_without_bulk_method_still_works(self, small_graph):
        class ScalarOnlySampler:
            """The documented minimal contract: sample_negatives(center, k)."""

            def __init__(self):
                self._rng = np.random.default_rng(0)

            def sample_negatives(self, center, count):
                out = []
                while len(out) < count:
                    candidate = int(self._rng.integers(0, small_graph.num_nodes))
                    if candidate != center and not small_graph.has_edge(center, candidate):
                        out.append(candidate)
                return np.asarray(out, dtype=np.int64)

        from repro.graph.sampling import generate_disjoint_subgraph_arrays

        batch = generate_disjoint_subgraph_arrays(small_graph, ScalarOnlySampler(), 3)
        assert len(batch) == small_graph.num_edges
        assert batch.contexts.shape == (small_graph.num_edges, 4)

    def test_from_proximity_reads_theorem3_quantities(self, small_graph):
        proximity = DeepWalkProximity(window_size=2).compute(small_graph)
        sampler = ProximityNegativeSampler.from_proximity(small_graph, proximity, seed=0)
        assert sampler.negative_probability(0) == pytest.approx(
            proximity.negative_sampling_mass(0)
        )


class TestGenerateDisjointSubgraphs:
    def test_one_subgraph_per_edge(self, small_graph):
        sampler = UnigramNegativeSampler(small_graph, seed=0)
        subgraphs = generate_disjoint_subgraphs(small_graph, sampler, num_negatives=4)
        assert len(subgraphs) == small_graph.num_edges
        for sub in subgraphs:
            assert small_graph.has_edge(sub.center, sub.positive)
            assert sub.negatives.shape == (4,)
            for neg in sub.negatives:
                assert not small_graph.has_edge(sub.center, int(neg))

    def test_both_directions_doubles_count(self, small_graph):
        sampler = UnigramNegativeSampler(small_graph, seed=0)
        subgraphs = generate_disjoint_subgraphs(
            small_graph, sampler, num_negatives=2, both_directions=True
        )
        assert len(subgraphs) == 2 * small_graph.num_edges

    def test_all_context_nodes_layout(self):
        sub = EdgeSubgraph(center=0, positive=1, negatives=np.array([2, 3]))
        np.testing.assert_array_equal(sub.all_context_nodes(), [1, 2, 3])

    def test_rejects_bad_k_and_empty_graph(self, small_graph):
        sampler = UnigramNegativeSampler(small_graph, seed=0)
        with pytest.raises(GraphError):
            generate_disjoint_subgraphs(small_graph, sampler, num_negatives=0)
        empty = Graph(3, [])
        with pytest.raises(GraphError):
            generate_disjoint_subgraphs(empty, UnigramNegativeSampler(empty, seed=0), 2)


class TestSubgraphSampler:
    def _subgraphs(self, graph, k=3):
        sampler = UnigramNegativeSampler(graph, seed=0)
        return generate_disjoint_subgraphs(graph, sampler, num_negatives=k)

    def test_sampling_rate(self, small_graph):
        subgraphs = self._subgraphs(small_graph)
        sampler = SubgraphSampler(subgraphs, batch_size=16, seed=0)
        assert sampler.sampling_rate == pytest.approx(16 / len(subgraphs))
        assert len(sampler) == len(subgraphs)

    def test_batch_without_replacement(self, small_graph):
        subgraphs = self._subgraphs(small_graph)
        sampler = SubgraphSampler(subgraphs, batch_size=20, seed=0)
        batch = sampler.sample_batch()
        assert len(batch) == 20
        ids = [id(sub) for sub in batch]
        assert len(set(ids)) == 20

    def test_batch_larger_than_population_is_capped(self, path_graph):
        subgraphs = self._subgraphs(path_graph, k=1)
        sampler = SubgraphSampler(subgraphs, batch_size=100, seed=0)
        assert sampler.batch_size == len(subgraphs)
        assert sampler.sampling_rate == pytest.approx(1.0)

    def test_rejects_empty_subgraphs_or_bad_batch(self, small_graph):
        with pytest.raises(GraphError):
            SubgraphSampler([], batch_size=4)
        subgraphs = self._subgraphs(small_graph)
        with pytest.raises(GraphError):
            SubgraphSampler(subgraphs, batch_size=0)
