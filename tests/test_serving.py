"""Serving layer: packed-key ranking, mmap store, query engine, batching server."""

from __future__ import annotations

import asyncio
import dataclasses
import json
import tracemalloc

import numpy as np
import pytest

from repro import TrainingConfig
from repro.exceptions import ArtifactError, ConfigurationError, TrainingError
from repro.models import Embedder, get_method, peek_artifact
from repro.models.registry import _REGISTRY
from repro.serving import (
    BatchingServer,
    QUERY_PHASES,
    QueryEngine,
    QueryProfiler,
    ServableModel,
    TopKResult,
    export_servable,
    write_servable,
)
from repro.serving.engine import _pack_keys_inplace, _unpack_keys


# --------------------------------------------------------------------- #
# oracle
# --------------------------------------------------------------------- #
def brute_force_topk(embeddings, nodes, k, *, metric="cosine", exclude_self=True):
    """Reference ranking: descending float64 score, ties by ascending id."""
    E = np.asarray(embeddings, dtype=np.float64)
    n = E.shape[0]
    norms = np.maximum(np.linalg.norm(E, axis=1), 1e-12)
    ids_out, scores_out = [], []
    for node in np.asarray(nodes, dtype=np.int64):
        scores = E @ E[node]
        if metric == "cosine":
            scores = scores / norms / norms[node]
        if exclude_self:
            scores = scores.copy()
            scores[node] = -np.inf
        order = np.lexsort((np.arange(n), -scores))[:k]
        ids_out.append(order)
        scores_out.append(scores[order])
    return np.array(ids_out), np.array(scores_out)


@pytest.fixture(scope="module")
def embeddings():
    rng = np.random.default_rng(7)
    return rng.standard_normal((211, 12))


@pytest.fixture(scope="module")
def engine(embeddings):
    return QueryEngine(embeddings, max_batch=16, block_rows=37, max_k=211)


@pytest.fixture()
def fitted_model(small_graph):
    config = TrainingConfig(embedding_dim=8, batch_size=16, epochs=1)
    return get_method("se_privgemb_deg").build(training=config, seed=0).fit(small_graph)


# --------------------------------------------------------------------- #
# packed ranking keys
# --------------------------------------------------------------------- #
class TestPackedKeys:
    def _pack(self, scores):
        scores = np.asarray(scores, dtype=np.float32)[None, :]
        width = scores.shape[1]
        keys = np.empty((1, width), dtype=np.uint64)
        mask = np.empty((1, width), dtype=np.uint32)
        block_ids = np.arange(width, dtype=np.uint64)
        _pack_keys_inplace(scores.view(np.uint32), mask, keys, block_ids)
        return keys[0]

    def test_roundtrip_recovers_scores_and_ids(self, rng):
        scores = rng.standard_normal(256).astype(np.float32)
        keys = self._pack(scores)
        ids, decoded = _unpack_keys(keys)
        assert np.array_equal(ids, np.arange(256))
        assert np.array_equal(decoded, scores)

    def test_key_order_is_descending_score_then_ascending_id(self, rng):
        scores = rng.standard_normal(512).astype(np.float32)
        scores[::8] = scores[1::8]  # force exact ties
        keys = self._pack(scores)
        order = np.argsort(keys, kind="stable")
        expected = np.lexsort((np.arange(scores.size), -scores.astype(np.float64)))
        assert np.array_equal(order, expected)

    def test_extreme_values_rank_correctly(self):
        scores = np.array([0.0, -0.0, np.inf, -np.inf, 1e30, -1e30, 1e-40], np.float32)
        keys = self._pack(scores)
        ids, _ = _unpack_keys(keys[np.argsort(keys)])
        # +inf best, -inf worst; -0.0 ranks (only) below +0.0
        assert ids[0] == 2 and ids[-1] == 3
        assert list(ids).index(0) < list(ids).index(1)


# --------------------------------------------------------------------- #
# the query engine
# --------------------------------------------------------------------- #
class TestQueryEngine:
    @pytest.mark.parametrize("metric", ["cosine", "dot"])
    @pytest.mark.parametrize("exclude_self", [True, False])
    def test_matches_brute_force(self, engine, embeddings, metric, exclude_self):
        nodes = np.arange(0, 211, 5)
        result = engine.top_k(nodes, 9, metric=metric, exclude_self=exclude_self)
        ids, scores = brute_force_topk(
            embeddings, nodes, 9, metric=metric, exclude_self=exclude_self
        )
        assert np.array_equal(result.ids, ids)
        np.testing.assert_allclose(result.scores, scores, rtol=1e-4)

    def test_chunking_never_changes_the_answer(self, embeddings):
        nodes = np.arange(50)
        baseline = QueryEngine(embeddings, max_batch=64, block_rows=4096).top_k(nodes, 7)
        for max_batch, block_rows in [(1, 211), (3, 7), (16, 37), (50, 1)]:
            chunked = QueryEngine(
                embeddings, max_batch=max_batch, block_rows=block_rows
            ).top_k(nodes, 7)
            assert np.array_equal(chunked.ids, baseline.ids)
            # geometry may switch BLAS kernels: scores agree to the last ulps
            np.testing.assert_allclose(chunked.scores, baseline.scores, rtol=1e-6)

    def test_float64_reference_path_agrees(self, embeddings):
        nodes = np.arange(40)
        f32 = QueryEngine(embeddings, block_rows=61).top_k(nodes, 11)
        f64 = QueryEngine(embeddings, block_rows=29, compute_dtype="float64").top_k(
            nodes, 11
        )
        assert np.array_equal(f32.ids, f64.ids)
        np.testing.assert_allclose(f32.scores, f64.scores, rtol=1e-4)

    def test_ties_break_by_ascending_id(self):
        # duplicated rows -> exact score ties on every query
        row = np.array([[1.0, 2.0, 3.0]])
        E = np.repeat(row, 6, axis=0).astype(np.float64)
        for dtype in ("float32", "float64"):
            result = QueryEngine(E, compute_dtype=dtype, block_rows=2).top_k([3], 5)
            assert np.array_equal(result.ids[0], [0, 1, 2, 4, 5])

    def test_k_clamps_to_candidate_count(self, embeddings):
        engine = QueryEngine(embeddings, max_k=211)
        assert engine.top_k([5], 10_000).k == 210  # exclude_self drops one
        assert engine.top_k([5], 10_000, exclude_self=False).k == 211

    def test_k_zero_and_empty_batch(self, engine):
        empty_k = engine.top_k([1, 2], 0)
        assert empty_k.ids.shape == (2, 0) and empty_k.scores.shape == (2, 0)
        empty_batch = engine.top_k([], 5)
        assert empty_batch.ids.shape == (0, 5)

    def test_exclude_self_controls_self_hits(self, engine):
        nodes = [0, 17, 99]
        excluded = engine.top_k(nodes, 10)
        for row, node in enumerate(nodes):
            assert node not in excluded.ids[row]
        included = engine.top_k(nodes, 1, metric="cosine", exclude_self=False)
        assert np.array_equal(included.ids[:, 0], nodes)  # self is its own best match

    def test_duplicate_query_ids_answered_independently(self, engine):
        result = engine.top_k([42, 42, 42], 6)
        assert np.array_equal(result.ids[0], result.ids[1])
        assert np.array_equal(result.ids[1], result.ids[2])

    def test_k_above_max_k_raises(self, embeddings):
        engine = QueryEngine(embeddings, max_k=8)
        with pytest.raises(ConfigurationError, match="max_k"):
            engine.top_k([0], 9)

    def test_invalid_inputs_raise(self, engine, embeddings):
        with pytest.raises(ConfigurationError):
            engine.top_k([0], -1)
        with pytest.raises(ConfigurationError):
            engine.top_k([-1], 3)
        with pytest.raises(ConfigurationError):
            engine.top_k([10_000], 3)
        with pytest.raises(ConfigurationError):
            engine.top_k([0], 3, metric="euclid")
        with pytest.raises(ConfigurationError):
            QueryEngine(np.zeros(4))
        with pytest.raises(ConfigurationError):
            QueryEngine(np.zeros((4, 2), dtype=np.int64))

    def test_score_links_matches_sigmoid_dot(self, engine, embeddings):
        rng = np.random.default_rng(3)
        u = rng.integers(0, 211, size=40)
        v = rng.integers(0, 211, size=40)
        expected = 1.0 / (1.0 + np.exp(-np.einsum("ij,ij->i", embeddings[u], embeddings[v])))
        np.testing.assert_allclose(engine.score_links(u, v), expected, rtol=1e-4)
        raw = engine.score_links(u, v, raw=True)
        np.testing.assert_allclose(
            raw, np.einsum("ij,ij->i", embeddings[u], embeddings[v]), rtol=1e-4
        )
        with pytest.raises(ConfigurationError):
            engine.score_links([1, 2], [3])

    def test_result_survives_workspace_reuse(self, engine):
        first = engine.top_k([1, 2], 5)
        kept_ids, kept_scores = first.ids.copy(), first.scores.copy()
        engine.top_k(np.arange(16), 5)  # clobber the workspace
        assert np.array_equal(first.ids, kept_ids)
        assert np.array_equal(first.scores, kept_scores)

    def test_profiler_records_phases_per_query(self, embeddings):
        profiler = QueryProfiler()
        engine = QueryEngine(embeddings, profiler=profiler, block_rows=50)
        engine.top_k(np.arange(10), 5)
        engine.top_k([3], 5)
        profile = profiler.profile()
        assert profile.steps == 11
        assert profiler.calls == 2
        for phase in QUERY_PHASES:
            assert profile.phase_seconds[phase] >= 0.0
        profiler.reset()
        assert profiler.profile().steps == 0


# --------------------------------------------------------------------- #
# the servable store
# --------------------------------------------------------------------- #
class TestServableStore:
    def test_round_trip(self, tmp_path, embeddings):
        path = tmp_path / "model.servable"
        write_servable(path, {"embeddings": embeddings}, {"method": "m"})
        with ServableModel.open(path, check_registry=False) as servable:
            assert servable.num_nodes == 211 and servable.embedding_dim == 12
            assert servable.payload_nbytes == embeddings.nbytes
            np.testing.assert_array_equal(servable.embeddings, embeddings)
            assert isinstance(servable.embeddings, np.memmap)

    def test_mmap_engine_equals_in_memory_engine(self, tmp_path, embeddings):
        path = tmp_path / "model.servable"
        write_servable(path, {"embeddings": embeddings}, {})
        with ServableModel.open(path, check_registry=False) as servable:
            mapped = servable.query_engine(block_rows=31).top_k(np.arange(30), 8)
        direct = QueryEngine(embeddings, block_rows=64).top_k(np.arange(30), 8)
        assert np.array_equal(mapped.ids, direct.ids)
        assert np.array_equal(mapped.scores, direct.scores)

    def test_open_is_zero_copy(self, tmp_path):
        """Opening + touching a servable allocates O(metadata), not O(payload)."""
        payload = np.zeros((20_000, 32), dtype=np.float32)  # 2.56 MB
        path = tmp_path / "big.servable"
        write_servable(path, {"embeddings": payload}, {})
        tracemalloc.start()
        with ServableModel.open(path, check_registry=False) as servable:
            assert servable.embeddings[12_345, 3] == 0.0
            current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak < 0.05 * payload.nbytes

    def test_overwrite_semantics(self, tmp_path, embeddings):
        path = tmp_path / "model.servable"
        write_servable(path, {"embeddings": embeddings}, {"rev": 1})
        with pytest.raises(ArtifactError, match="overwrite"):
            write_servable(path, {"embeddings": embeddings}, {"rev": 2})
        write_servable(path, {"embeddings": embeddings[:10]}, {"rev": 2}, overwrite=True)
        with ServableModel.open(path, check_registry=False) as servable:
            assert servable.num_nodes == 10
            assert servable.metadata["rev"] == 2

    def test_writes_are_atomic_no_temp_left_behind(self, tmp_path, embeddings):
        with pytest.raises(ArtifactError):
            write_servable(tmp_path / "bad.servable", {"weights": embeddings}, {})
        assert list(tmp_path.iterdir()) == []  # no temp directory litter

    def test_rejects_foreign_and_corrupt_directories(self, tmp_path, embeddings):
        with pytest.raises(ArtifactError, match="no servable"):
            ServableModel.open(tmp_path / "missing")
        path = tmp_path / "model.servable"
        write_servable(path, {"embeddings": embeddings}, {})
        document = json.loads((path / "servable.json").read_text())

        (path / "servable.json").write_text("{not json")
        with pytest.raises(ArtifactError, match="corrupt"):
            ServableModel.open(path)

        (path / "servable.json").write_text(json.dumps({**document, "format": "other"}))
        with pytest.raises(ArtifactError, match="does not contain"):
            ServableModel.open(path)

        (path / "servable.json").write_text(
            json.dumps({**document, "format_version": 99})
        )
        with pytest.raises(ArtifactError, match="version"):
            ServableModel.open(path)

        tampered = json.loads(json.dumps(document))
        tampered["arrays"]["embeddings"]["shape"] = [1, 1]
        (path / "servable.json").write_text(json.dumps(tampered))
        with pytest.raises(ArtifactError, match="promises"):
            ServableModel.open(path)

        escaped = json.loads(json.dumps(document))
        escaped["arrays"]["embeddings"]["file"] = "../evil.npy"
        (path / "servable.json").write_text(json.dumps(escaped))
        with pytest.raises(ArtifactError, match="escapes"):
            ServableModel.open(path)

    def test_close_invalidates_accessors(self, tmp_path, embeddings):
        path = tmp_path / "model.servable"
        write_servable(path, {"embeddings": embeddings}, {})
        servable = ServableModel.open(path, check_registry=False)
        servable.close()
        with pytest.raises(ArtifactError, match="closed"):
            servable.embeddings


# --------------------------------------------------------------------- #
# estimator handoff: save -> export -> open -> query without refitting
# --------------------------------------------------------------------- #
class TestEmbedderHandoff:
    def test_export_open_query(self, tmp_path, fitted_model):
        servable_path = fitted_model.export_servable(tmp_path / "m.servable")
        with ServableModel.open(servable_path) as servable:
            assert servable.method == "se_privgemb_deg"
            np.testing.assert_array_equal(servable.embeddings, fitted_model.embeddings_)
            assert servable.context_embeddings is not None
            result = servable.query_engine().top_k([0, 1], 5)
            assert isinstance(result, TopKResult)

    def test_export_from_artifact_path(self, tmp_path, fitted_model):
        artifact = tmp_path / "m.npz"
        fitted_model.save(artifact)
        export_servable(artifact, tmp_path / "m.servable")
        with ServableModel.open(tmp_path / "m.servable") as servable:
            np.testing.assert_array_equal(servable.embeddings, fitted_model.embeddings_)

    def test_loaded_estimator_serves_without_refitting(self, tmp_path, fitted_model):
        artifact = tmp_path / "m.npz"
        fitted_model.save(artifact)
        loaded = Embedder.load(artifact)
        engine = loaded.as_servable(max_batch=4)
        direct = fitted_model.as_servable(max_batch=4)
        nodes = np.arange(10)
        assert np.array_equal(engine.top_k(nodes, 5).ids, direct.top_k(nodes, 5).ids)

    def test_as_servable_requires_fit(self):
        model = get_method("se_privgemb_deg").build(seed=0)
        with pytest.raises(TrainingError, match="not fitted"):
            model.as_servable()

    def test_as_servable_refuses_drifted_spec(self, monkeypatch, fitted_model):
        spec = _REGISTRY["se_privgemb_deg"]
        monkeypatch.setitem(
            _REGISTRY, "se_privgemb_deg", dataclasses.replace(spec, perturbation="naive")
        )
        with pytest.raises(ArtifactError, match="re-registered"):
            fitted_model.as_servable()
        with pytest.raises(ArtifactError, match="re-registered"):
            fitted_model.export_servable("unused.servable")

    def test_open_refuses_drifted_registry(self, tmp_path, monkeypatch, fitted_model):
        path = fitted_model.export_servable(tmp_path / "m.servable")
        spec = _REGISTRY["se_privgemb_deg"]
        monkeypatch.setitem(
            _REGISTRY, "se_privgemb_deg", dataclasses.replace(spec, perturbation="naive")
        )
        with pytest.raises(ArtifactError, match="drifted"):
            ServableModel.open(path)
        with ServableModel.open(path, check_registry=False) as servable:  # escape hatch
            assert servable.num_nodes == fitted_model.embeddings_.shape[0]

    def test_open_refuses_unregistered_method(self, tmp_path, monkeypatch, fitted_model):
        path = fitted_model.export_servable(tmp_path / "m.servable")
        monkeypatch.delitem(_REGISTRY, "se_privgemb_deg")
        with pytest.raises(ArtifactError, match="not\\s+registered"):
            ServableModel.open(path)


# --------------------------------------------------------------------- #
# peek_artifact
# --------------------------------------------------------------------- #
class TestPeekArtifact:
    def test_returns_metadata_and_array_info(self, tmp_path, fitted_model):
        artifact = tmp_path / "m.npz"
        fitted_model.save(artifact)
        peeked = peek_artifact(artifact)
        assert peeked["method"] == "se_privgemb_deg"
        assert peeked["arrays"]["embeddings"]["shape"] == list(
            fitted_model.embeddings_.shape
        )
        assert peeked["arrays"]["embeddings"]["dtype"] == "float64"
        # agrees with the full loader's metadata
        loaded = Embedder.load(artifact)
        assert peeked["dataset_fingerprint"] == loaded.dataset_fingerprint_

    def test_missing_and_foreign_files_raise(self, tmp_path):
        with pytest.raises(ArtifactError, match="no model artifact"):
            peek_artifact(tmp_path / "missing.npz")
        foreign = tmp_path / "foreign.npz"
        np.savez(foreign, data=np.zeros(3))
        with pytest.raises(ArtifactError):
            peek_artifact(foreign)


# --------------------------------------------------------------------- #
# the batching server
# --------------------------------------------------------------------- #
class TestBatchingServer:
    def test_coalesces_concurrent_requests(self, engine, embeddings):
        async def scenario():
            async with BatchingServer(engine, max_delay=0.01) as server:
                answers = await asyncio.gather(
                    *(server.top_k(node, k=5) for node in range(12))
                )
                return answers, server.stats

        answers, stats = asyncio.run(scenario())
        expected_ids, expected_scores = brute_force_topk(embeddings, range(12), 5)
        for row, (ids, scores) in enumerate(answers):
            assert np.array_equal(ids, expected_ids[row])
            np.testing.assert_allclose(scores, expected_scores[row], rtol=1e-4)
        assert stats.requests == 12
        assert stats.batches < stats.requests  # coalescing actually happened
        assert stats.coalesced_requests > 0
        assert stats.mean_batch_size > 1.0

    def test_mixed_k_requests_flush_as_separate_groups(self, engine):
        async def scenario():
            async with BatchingServer(engine, max_delay=0.01) as server:
                mixed = await asyncio.gather(
                    server.top_k(1, k=3),
                    server.top_k(2, k=5),
                    server.top_k(3, k=3),
                    server.top_k(4, k=5, metric="dot"),
                )
                return mixed, server.stats

        mixed, stats = asyncio.run(scenario())
        assert [ids.size for ids, _ in mixed] == [3, 5, 3, 5]
        assert stats.requests == 4
        assert stats.batches >= 3  # (k=3), (k=5 cosine), (k=5 dot)

    def test_max_batch_flushes_early(self, engine):
        async def scenario():
            # a window long enough that only the size trigger can flush
            async with BatchingServer(engine, max_batch=4, max_delay=5.0) as server:
                await asyncio.gather(*(server.top_k(node, k=2) for node in range(8)))
                return server.stats

        stats = asyncio.run(scenario())
        assert stats.max_batch_size <= 4
        assert stats.batches >= 2

    def test_stop_drains_pending_requests(self, engine):
        async def scenario():
            server = await BatchingServer(engine, max_delay=10.0).start()
            pending = [asyncio.ensure_future(server.top_k(node, k=2)) for node in range(5)]
            await asyncio.sleep(0)  # let the requests enqueue
            await server.stop()  # must flush them, not strand them
            return await asyncio.gather(*pending)

        answers = asyncio.run(scenario())
        assert len(answers) == 5
        assert all(ids.size == 2 for ids, _ in answers)

    def test_request_while_stopped_raises(self, engine):
        async def scenario():
            server = BatchingServer(engine)
            with pytest.raises(RuntimeError, match="not running"):
                await server.top_k(0, k=2)
            async with server:
                await server.top_k(0, k=2)
            with pytest.raises(RuntimeError, match="not running"):
                await server.top_k(0, k=2)

        asyncio.run(scenario())

    def test_engine_errors_reach_every_waiter(self, engine):
        async def scenario():
            async with BatchingServer(engine, max_delay=0.01) as server:
                results = await asyncio.gather(
                    *(server.top_k(node, k=5, metric="bogus") for node in range(3)),
                    return_exceptions=True,
                )
                return results

        results = asyncio.run(scenario())
        assert len(results) == 3
        assert all(isinstance(exc, ConfigurationError) for exc in results)

    def test_invalid_configuration_raises(self, engine):
        with pytest.raises(ConfigurationError):
            BatchingServer(engine, max_delay=-1.0)
        with pytest.raises(ConfigurationError):
            BatchingServer(engine, max_batch=0)


# --------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------- #
class TestServingCli:
    def test_inspect_artifact_and_servable(self, tmp_path, fitted_model, capsys):
        from repro.experiments.__main__ import main

        artifact = tmp_path / "m.npz"
        fitted_model.save(artifact)
        assert main(["inspect", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "se_privgemb_deg" in out and "artifact" in out

        servable = fitted_model.export_servable(tmp_path / "m.servable")
        assert main(["inspect", str(servable)]) == 0
        out = capsys.readouterr().out
        assert "memory-mapped" in out

    def test_query_from_servable(self, tmp_path, fitted_model, capsys):
        from repro.experiments.__main__ import main

        servable = fitted_model.export_servable(tmp_path / "m.servable")
        assert main(["query", str(servable), "--nodes", "0,3", "--k", "4"]) == 0
        out = capsys.readouterr().out
        assert out.count("node ") == 2
        expected = fitted_model.as_servable().top_k([0, 3], 4)
        assert f"{int(expected.ids[0][0])}:" in out

    def test_query_from_artifact(self, tmp_path, fitted_model, capsys):
        from repro.experiments.__main__ import main

        artifact = tmp_path / "m.npz"
        fitted_model.save(artifact)
        assert main(["query", str(artifact), "--nodes", "1", "--k", "2"]) == 0
        assert "node 1:" in capsys.readouterr().out
