"""Streaming subsystem: edge deltas, incremental invalidation, warm starts, ledger."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro import (
    ConfigurationError,
    DeltaPlanner,
    EdgeDelta,
    Graph,
    GraphError,
    PrivacyBudgetExhausted,
    PrivacyError,
    PrivacyLedger,
    TrainingConfig,
    apply_delta,
)
from repro.graph.generators import watts_strogatz_graph
from repro.models import WarmStart, get_method, peek_artifact
from repro.privacy import RdpAccountant
from repro.proximity import available_proximities, get_proximity
from repro.proximity.cache import ProximityCache


def _scratch_fingerprint(graph: Graph, delta: EdgeDelta) -> str:
    """Rebuild the post-delta graph from an edited edge list, the slow way."""
    edge_set = {(int(u), int(v)) for u, v in graph.edges.tolist()}
    edge_set -= {(int(u), int(v)) for u, v in delta.deletes.tolist()}
    edge_set |= {(int(u), int(v)) for u, v in delta.inserts.tolist()}
    n = graph.num_nodes if delta.num_nodes is None else delta.num_nodes
    return Graph(n, sorted(edge_set)).content_fingerprint()


@pytest.fixture(scope="module")
def base_graph() -> Graph:
    return watts_strogatz_graph(160, 6, 0.15, seed=31)


@pytest.fixture(scope="module")
def churn_delta(base_graph: Graph) -> EdgeDelta:
    """A mixed delta: deletions, insertions, and two new nodes."""
    rng = np.random.default_rng(7)
    edges = base_graph.edges
    deletes = edges[rng.choice(edges.shape[0], size=6, replace=False)]
    existing = {(int(u), int(v)) for u, v in edges.tolist()}
    inserts = []
    while len(inserts) < 6:
        u, v = sorted(rng.integers(0, base_graph.num_nodes, size=2).tolist())
        if u != v and (u, v) not in existing and (u, v) not in inserts:
            inserts.append((u, v))
    inserts += [(3, 160), (160, 161)]
    return EdgeDelta(inserts=inserts, deletes=deletes, num_nodes=162)


class TestEdgeDelta:
    def test_canonicalisation_collapses_mirrors_and_duplicates(self):
        delta = EdgeDelta(inserts=[(2, 1), (1, 2), (4, 3)])
        assert delta.inserts.tolist() == [[1, 2], [3, 4]]
        assert delta.num_inserts == 2

    def test_rejects_self_loops_and_negative_ids(self):
        with pytest.raises(GraphError):
            EdgeDelta(inserts=[(3, 3)])
        with pytest.raises(GraphError):
            EdgeDelta(deletes=[(-1, 2)])

    def test_rejects_insert_delete_overlap(self):
        with pytest.raises(GraphError, match="both inserts and deletes"):
            EdgeDelta(inserts=[(0, 1), (2, 3)], deletes=[(1, 0)])

    def test_immutable_arrays(self):
        delta = EdgeDelta(inserts=[(0, 1)])
        with pytest.raises(ValueError):
            delta.inserts[0, 0] = 5

    def test_touched_nodes_and_emptiness(self):
        delta = EdgeDelta(inserts=[(5, 2)], deletes=[(7, 2)])
        assert delta.touched_nodes.tolist() == [2, 5, 7]
        assert not delta.is_empty
        assert EdgeDelta().is_empty
        assert EdgeDelta().touched_nodes.size == 0

    def test_fingerprint_tracks_content(self):
        a = EdgeDelta(inserts=[(0, 1)], deletes=[(2, 3)])
        b = EdgeDelta(inserts=[(1, 0)], deletes=[(3, 2)])
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != EdgeDelta(inserts=[(0, 1)]).fingerprint()
        assert (
            EdgeDelta(inserts=[(0, 1)], num_nodes=9).fingerprint()
            != EdgeDelta(inserts=[(0, 1)]).fingerprint()
        )

    def test_repr_mentions_batch_sizes(self):
        assert "inserts=1" in repr(EdgeDelta(inserts=[(0, 1)], num_nodes=4))


class TestApplyDelta:
    def test_matches_scratch_rebuild(self, base_graph, churn_delta):
        updated = apply_delta(base_graph, churn_delta)
        assert updated.num_nodes == 162
        assert updated.content_fingerprint() == _scratch_fingerprint(
            base_graph, churn_delta
        )

    def test_empty_delta_is_identity(self, base_graph):
        updated = apply_delta(base_graph, EdgeDelta())
        assert updated.content_fingerprint() == base_graph.content_fingerprint()

    def test_delete_only_and_insert_only(self, base_graph):
        victim = tuple(int(x) for x in base_graph.edges[0])
        shrunk = apply_delta(base_graph, EdgeDelta(deletes=[victim]))
        assert shrunk.num_edges == base_graph.num_edges - 1
        grown = apply_delta(shrunk, EdgeDelta(inserts=[victim]))
        assert grown.content_fingerprint() == base_graph.content_fingerprint()

    def test_strict_delete_of_missing_edge(self, base_graph):
        existing = {(int(u), int(v)) for u, v in base_graph.edges.tolist()}
        missing = next(
            (u, v)
            for u in range(base_graph.num_nodes)
            for v in range(u + 1, base_graph.num_nodes)
            if (u, v) not in existing
        )
        with pytest.raises(GraphError, match="non-existent"):
            apply_delta(base_graph, EdgeDelta(deletes=[missing]))

    def test_strict_insert_of_present_edge(self, base_graph):
        present = tuple(int(x) for x in base_graph.edges[5])
        with pytest.raises(GraphError, match="already-present"):
            apply_delta(base_graph, EdgeDelta(inserts=[present]))

    def test_growth_requires_num_nodes(self, base_graph):
        n = base_graph.num_nodes
        with pytest.raises(GraphError, match="num_nodes"):
            apply_delta(base_graph, EdgeDelta(inserts=[(0, n)]))
        grown = apply_delta(base_graph, EdgeDelta(inserts=[(0, n)], num_nodes=n + 1))
        assert grown.num_nodes == n + 1

    def test_cannot_shrink_node_set(self, base_graph):
        with pytest.raises(GraphError, match="shrink"):
            apply_delta(base_graph, EdgeDelta(num_nodes=base_graph.num_nodes - 1))

    def test_rejects_non_graph(self):
        with pytest.raises(GraphError):
            apply_delta(object(), EdgeDelta())


class TestWithExtraEdges:
    def test_duplicate_insert_warns(self, triangle_graph):
        with pytest.warns(RuntimeWarning, match="already present"):
            triangle_graph.with_extra_edges([(0, 1)])
        with pytest.warns(RuntimeWarning, match="already present"):
            triangle_graph.with_extra_edges([(1, 3), (3, 1)])

    def test_fresh_insert_is_silent(self, triangle_graph):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            grown = triangle_graph.with_extra_edges([(1, 3)])
        assert grown.num_edges == triangle_graph.num_edges + 1


class TestDeltaPlanner:
    @pytest.mark.parametrize("name", available_proximities())
    def test_refresh_matches_scratch_for_every_measure(
        self, name, base_graph, churn_delta
    ):
        measure = get_proximity(name)
        new_graph = apply_delta(base_graph, churn_delta)
        planner = DeltaPlanner()
        old = measure.compute(base_graph, sparse=True)
        result = planner.refresh(
            base_graph,
            churn_delta,
            measure,
            new_graph=new_graph,
            sparse=True,
            old_matrix=old,
        )
        scratch = measure.compute(new_graph, sparse=True)
        assert result.matrix.is_sparse == scratch.is_sparse
        if scratch.is_sparse:
            diff = (result.matrix.sparse_matrix - scratch.sparse_matrix)
            error = np.abs(diff.toarray()).max() if diff.nnz else 0.0
        else:
            error = np.abs(result.matrix.matrix - scratch.matrix).max()
        assert error <= 1e-10
        if result.plan.scope == "rows":
            assert result.source == "splice"
            assert result.plan.num_reused > 0
        else:
            assert result.source == "full"

    def test_global_measures_plan_full(self, base_graph, churn_delta):
        planner = DeltaPlanner()
        for name in ("katz", "ppr", "preferential_attachment"):
            plan = planner.plan(base_graph, churn_delta, get_proximity(name))
            assert plan.scope == "full"

    def test_local_measures_plan_rows(self, base_graph, churn_delta):
        planner = DeltaPlanner()
        plan = planner.plan(
            base_graph, churn_delta, get_proximity("common_neighbors"), sparse=True
        )
        assert plan.scope == "rows"
        assert plan.radius == 1
        assert 0.0 < plan.reuse_fraction < 1.0
        new_nodes = set(range(base_graph.num_nodes, 162))
        assert new_nodes <= set(plan.affected_rows.tolist())

    def test_dense_backend_falls_back_to_full(self, base_graph, churn_delta):
        plan = DeltaPlanner().plan(
            base_graph, churn_delta, get_proximity("common_neighbors"), sparse=False
        )
        assert plan.scope == "full"
        assert "CSR" in plan.reason

    def test_empty_delta_reuses_matrix_verbatim(self, base_graph):
        measure = get_proximity("jaccard")
        old = measure.compute(base_graph, sparse=True)
        result = DeltaPlanner().refresh(
            base_graph, EdgeDelta(), measure, sparse=True, old_matrix=old
        )
        assert result.source == "splice"
        assert result.matrix is old

    def test_refresh_through_cache(self, base_graph, churn_delta, tmp_path):
        cache = ProximityCache(tmp_path / "proximity")
        measure = get_proximity("common_neighbors")
        cache.get_or_compute(measure, base_graph, sparse=True)
        new_graph = apply_delta(base_graph, churn_delta)
        planner = DeltaPlanner(cache)
        first = planner.refresh(
            base_graph, churn_delta, measure, new_graph=new_graph, sparse=True
        )
        assert first.source == "splice"
        again = planner.refresh(
            base_graph, churn_delta, measure, new_graph=new_graph, sparse=True
        )
        assert again.source == "cache"
        scratch = measure.compute(new_graph, sparse=True)
        diff = again.matrix.sparse_matrix - scratch.sparse_matrix
        assert (np.abs(diff.toarray()).max() if diff.nnz else 0.0) <= 1e-10

    def test_refresh_without_old_matrix_computes_full(self, base_graph, churn_delta):
        result = DeltaPlanner().refresh(
            base_graph, churn_delta, get_proximity("common_neighbors"), sparse=True
        )
        assert result.source == "full"

    def test_new_graph_mismatch_rejected(self, base_graph, churn_delta):
        with pytest.raises(GraphError):
            DeltaPlanner().plan(
                base_graph, churn_delta, get_proximity("jaccard"), new_graph=base_graph
            )


class TestWarmStart:
    @pytest.fixture(scope="class")
    def training(self) -> TrainingConfig:
        return TrainingConfig(
            embedding_dim=8, batch_size=16, learning_rate=0.05, negative_samples=3, epochs=3
        )

    @pytest.fixture(scope="class")
    def donor_path(self, training, tmp_path_factory):
        graph = watts_strogatz_graph(60, 4, 0.1, seed=5)
        model = get_method("se_gemb_dw").build(training, seed=0)
        model.fit(graph)
        path = tmp_path_factory.mktemp("warm") / "donor.npz"
        model.save(path)
        return path

    def test_copied_rows_and_pinned_cold_tail(self, training, donor_path):
        from repro.embedding.skipgram import SkipGramModel

        trainer = get_method("se_gemb_dw").build(training, seed=0)
        warm = trainer._resolve_warm_start(str(donor_path))
        assert warm.num_nodes == 60
        trainer._pending_warm_start = warm
        seeded = SkipGramModel(63, 8, seed=11)
        cold = SkipGramModel(63, 8, seed=11)
        trainer._apply_warm_start(seeded)
        np.testing.assert_array_equal(seeded.w_in[:60], warm.embeddings.astype(seeded.dtype))
        # new-node rows keep exactly the pinned cold initialisation
        np.testing.assert_array_equal(seeded.w_in[60:], cold.w_in[60:])
        assert trainer._last_warm_start["copied_rows"] == 60

    def test_fit_with_warm_start_records_metadata(self, training, donor_path, tmp_path):
        graph = watts_strogatz_graph(63, 4, 0.1, seed=6)
        model = get_method("se_gemb_dw").build(training, seed=1)
        model.fit(graph, warm_start=str(donor_path))
        out = tmp_path / "refit.npz"
        model.save(out)
        meta = peek_artifact(out)
        assert meta["warm_start"]["copied_rows"] == 60
        assert meta["warm_start"]["donor_nodes"] == 60

    def test_warm_start_from_fitted_estimator(self, training):
        graph = watts_strogatz_graph(40, 4, 0.1, seed=8)
        donor = get_method("se_gemb_dw").build(training, seed=0).fit(graph)
        model = get_method("se_gemb_dw").build(training, seed=1)
        model.fit(graph, warm_start=donor)
        assert model._last_warm_start["source"] == "estimator"

    def test_dimension_mismatch_rejected(self, donor_path):
        wide = TrainingConfig(
            embedding_dim=16, batch_size=16, learning_rate=0.05, negative_samples=3, epochs=3
        )
        graph = watts_strogatz_graph(40, 4, 0.1, seed=8)
        model = get_method("se_gemb_dw").build(wide, seed=0)
        with pytest.raises(ConfigurationError, match="dim"):
            model.fit(graph, warm_start=str(donor_path))

    def test_method_mismatch_warns(self, training, donor_path):
        graph = watts_strogatz_graph(40, 4, 0.1, seed=8)
        model = get_method("se_gemb_deg").build(training, seed=0)
        with pytest.warns(RuntimeWarning, match="geometries may differ"):
            model.fit(graph, warm_start=str(donor_path))

    def test_unsupported_estimator_rejected(self, donor_path, small_graph):
        from repro.baselines import DPGGAN

        baseline = DPGGAN(seed=0)
        with pytest.raises(ConfigurationError, match="warm_start"):
            baseline.fit(small_graph, warm_start=str(donor_path))

    def test_invalid_source_rejected(self, training, small_graph):
        model = get_method("se_gemb_dw").build(training, seed=0)
        with pytest.raises(ConfigurationError, match="warm_start"):
            model.fit(small_graph, warm_start=42)

    def test_warmstart_dataclass_shape_helpers(self):
        warm = WarmStart(
            embeddings=np.zeros((5, 3)),
            context_embeddings=None,
            method="m",
            dataset_fingerprint=None,
            source="test",
        )
        assert warm.num_nodes == 5
        assert warm.embedding_dim == 3


NM, RATE, DELTA = 1.1, 0.01, 1e-5


class TestPrivacyLedger:
    def test_round_trip_and_chain(self, tmp_path):
        path = tmp_path / "ledger.json"
        ledger = PrivacyLedger(path)
        assert len(ledger) == 0
        assert ledger.dataset_fingerprint is None
        ledger.record_fit(
            "fp-a",
            method="m",
            noise_multiplier=NM,
            sampling_rate=RATE,
            steps=40,
            delta=DELTA,
            epsilon=ledger.epsilon_with(
                DELTA, noise_multiplier=NM, sampling_rate=RATE, steps=40
            ),
        )
        reloaded = PrivacyLedger(path)
        assert len(reloaded) == 1
        assert reloaded.head_hash == ledger.head_hash
        assert reloaded.dataset_fingerprint == "fp-a"
        assert reloaded.total_steps() == 40

    def test_sequential_refits_bit_identical_to_single_accountant(self, tmp_path):
        K, T = 4, 37
        ledger = PrivacyLedger(tmp_path / "ledger.json")
        for _ in range(K):
            acc = RdpAccountant(NM, RATE)
            acc.step(T)
            ledger.record_accountant("fp-a", acc, method="m", delta=DELTA)
        reference = RdpAccountant(NM, RATE)
        reference.step(K * T)
        expected = reference.get_privacy_spent(DELTA)
        spent = ledger.total_spent(DELTA)
        assert spent.epsilon == expected.epsilon  # exact, not approx
        assert spent.best_alpha == expected.best_alpha
        assert ledger.total_steps() == K * T
        np.testing.assert_array_equal(ledger.total_rdp(), reference.total_rdp)

    def test_lineage_chain_and_break(self, tmp_path, triangle_graph):
        ledger = PrivacyLedger(tmp_path / "ledger.json")
        delta = EdgeDelta(inserts=[(1, 3)])
        updated = apply_delta(triangle_graph, delta)
        ledger.record_fit(
            triangle_graph,
            method="m",
            noise_multiplier=NM,
            sampling_rate=RATE,
            steps=5,
            delta=DELTA,
            epsilon=0.5,
        )
        with pytest.raises(PrivacyError, match="lineage"):
            ledger.record_fit(
                updated,
                method="m",
                noise_multiplier=NM,
                sampling_rate=RATE,
                steps=5,
                delta=DELTA,
                epsilon=0.5,
            )
        entry = ledger.record_delta(triangle_graph, updated, delta)
        assert entry["delta_fingerprint"] == delta.fingerprint()
        assert entry["num_inserts"] == 1
        assert ledger.dataset_fingerprint == updated.content_fingerprint()
        ledger.record_fit(
            updated,
            method="m",
            noise_multiplier=NM,
            sampling_rate=RATE,
            steps=5,
            delta=DELTA,
            epsilon=0.5,
        )
        with pytest.raises(PrivacyError, match="lineage"):
            ledger.record_delta(triangle_graph, updated, delta)

    def test_tamper_detection(self, tmp_path):
        path = tmp_path / "ledger.json"
        ledger = PrivacyLedger(path)
        ledger.record_fit(
            "fp-a",
            method="m",
            noise_multiplier=NM,
            sampling_rate=RATE,
            steps=10,
            delta=DELTA,
            epsilon=0.4,
        )
        header, entry_line = path.read_text().splitlines()
        entry = json.loads(entry_line)
        entry["steps"] = 1
        path.write_text(
            header + "\n" + json.dumps(entry, sort_keys=True, separators=(",", ":")) + "\n"
        )
        with pytest.raises(PrivacyError, match="tamper|hash|chain"):
            PrivacyLedger(path)

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "ledger.json"
        path.write_text("{not json")
        with pytest.raises(PrivacyError):
            PrivacyLedger(path)

    def test_would_exceed_and_admission(self, tmp_path):
        ledger = PrivacyLedger(tmp_path / "ledger.json")
        target = 2.0
        remaining = ledger.remaining_steps(
            target, DELTA, noise_multiplier=NM, sampling_rate=RATE
        )
        reference = RdpAccountant(NM, RATE)
        assert remaining == reference.max_steps(target, DELTA)
        assert remaining > 0
        assert not ledger.would_exceed(
            target, DELTA, noise_multiplier=NM, sampling_rate=RATE, steps=remaining
        )
        assert ledger.would_exceed(
            target, DELTA, noise_multiplier=NM, sampling_rate=RATE, steps=remaining + 1
        )
        ledger.record_fit(
            "fp",
            method="m",
            noise_multiplier=NM,
            sampling_rate=RATE,
            steps=remaining,
            delta=DELTA,
            epsilon=target,
        )
        with pytest.raises(PrivacyBudgetExhausted):
            ledger.check_admission(
                target, DELTA, noise_multiplier=NM, sampling_rate=RATE
            )

    def test_attached_accountant_refuses_reset(self, tmp_path):
        ledger = PrivacyLedger(tmp_path / "ledger.json")
        acc = RdpAccountant(NM, RATE)
        ledger.attach(acc)
        acc.step(3)
        with pytest.raises(PrivacyError, match="ledger"):
            acc.reset()

    def test_detached_reset_warns(self):
        acc = RdpAccountant(NM, RATE)
        acc.step(3)
        with pytest.warns(RuntimeWarning, match="discards"):
            acc.reset()
        assert acc.steps == 0

    def test_empty_ledger_spends_nothing(self, tmp_path):
        ledger = PrivacyLedger(tmp_path / "ledger.json")
        spent = ledger.total_spent(DELTA)
        assert spent.epsilon == 0.0
        summary = ledger.summary(DELTA)
        assert summary["entries"] == 0
        assert summary["total_steps"] == 0

    def test_summary_after_activity(self, tmp_path):
        ledger = PrivacyLedger(tmp_path / "ledger.json")
        ledger.record_fit(
            "fp-a",
            method="m",
            noise_multiplier=NM,
            sampling_rate=RATE,
            steps=12,
            delta=DELTA,
            epsilon=1.0,
        )
        ledger.record_delta("fp-a", "fp-b", "abc123")
        summary = ledger.summary()
        assert summary["fits"] == 1
        assert summary["deltas"] == 1
        assert summary["dataset_fingerprint"] == "fp-b"
        assert summary["total_steps"] == 12

    def test_mismatched_alpha_grid_rejected(self, tmp_path):
        ledger = PrivacyLedger(tmp_path / "ledger.json", alphas=[2.0, 4.0, 8.0])
        acc = RdpAccountant(NM, RATE)
        with pytest.raises(PrivacyError, match="grid"):
            ledger.attach(acc)


class TestLedgerCrashDurability:
    def test_totals_survive_sigkill(self, tmp_path):
        """Record a fit, die without cleanup, reopen: the spend is still there."""
        path = tmp_path / "ledger.json"
        child = textwrap.dedent(
            f"""
            import os, signal
            from repro import PrivacyLedger
            from repro.privacy import RdpAccountant
            ledger = PrivacyLedger({str(path)!r})
            acc = RdpAccountant({NM}, {RATE})
            acc.step(37)
            ledger.record_accountant("fp-a", acc, method="m", delta={DELTA})
            os.kill(os.getpid(), signal.SIGKILL)
            """
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", child], env=env, capture_output=True, text=True
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        survivor = PrivacyLedger(path)
        assert survivor.total_steps() == 37
        acc = RdpAccountant(NM, RATE)
        acc.step(37)
        survivor.record_accountant("fp-a", acc, method="m", delta=DELTA)
        reference = RdpAccountant(NM, RATE)
        reference.step(74)
        assert (
            survivor.total_spent(DELTA).epsilon
            == reference.get_privacy_spent(DELTA).epsilon
        )


class TestLedgerEmbedderIntegration:
    @pytest.fixture()
    def private_model(self, fast_training_config, fast_privacy_config):
        return get_method("se_privgemb_dw").build(
            fast_training_config, fast_privacy_config, seed=0
        )

    def test_private_fit_records_into_ledger(
        self, private_model, small_graph, tmp_path
    ):
        ledger = PrivacyLedger(tmp_path / "ledger.json")
        private_model.fit(small_graph, ledger=ledger)
        entries = ledger.entries
        assert len(entries) == 1
        assert entries[0]["kind"] == "fit"
        assert entries[0]["dataset_fingerprint"] == small_graph.content_fingerprint()
        assert entries[0]["steps"] == private_model.accountant.steps
        spent = private_model.result_.privacy_spent
        assert entries[0]["epsilon"] == spent.epsilon

    def test_ledger_head_gate(self, private_model, small_graph, tmp_path):
        ledger = PrivacyLedger(tmp_path / "ledger.json")
        ledger.record_fit(
            "someone-else",
            method="m",
            noise_multiplier=NM,
            sampling_rate=RATE,
            steps=1,
            delta=DELTA,
            epsilon=0.1,
        )
        with pytest.raises(PrivacyError, match="lineage"):
            private_model.fit(small_graph, ledger=ledger)

    def test_nonprivate_model_rejects_ledger(
        self, fast_training_config, small_graph, tmp_path
    ):
        model = get_method("se_gemb_dw").build(fast_training_config, seed=0)
        with pytest.raises(ConfigurationError, match="ledger"):
            model.fit(small_graph, ledger=PrivacyLedger(tmp_path / "ledger.json"))


class TestPeekArtifact:
    def test_surfaces_privacy_and_fingerprint(
        self, fast_training_config, fast_privacy_config, small_graph, tmp_path
    ):
        model = get_method("se_privgemb_dw").build(
            fast_training_config, fast_privacy_config, seed=0
        )
        model.fit(small_graph)
        path = tmp_path / "model.npz"
        model.save(path)
        meta = peek_artifact(path)
        assert meta["privacy_spent"] is not None
        assert meta["privacy_spent"]["epsilon"] > 0
        assert meta["dataset_fingerprint"] == small_graph.content_fingerprint()

    def test_nonprivate_artifact_has_null_spend(
        self, fast_training_config, small_graph, tmp_path
    ):
        model = get_method("se_gemb_dw").build(fast_training_config, seed=0)
        model.fit(small_graph)
        path = tmp_path / "model.npz"
        model.save(path)
        meta = peek_artifact(path)
        assert meta["privacy_spent"] is None
        assert meta["dataset_fingerprint"] == small_graph.content_fingerprint()


class TestStreamingCli:
    def _write_graph(self, tmp_path):
        from repro.graph.io import write_edge_list

        graph = watts_strogatz_graph(30, 4, 0.1, seed=3)
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path)
        return graph, path

    def test_delta_subcommand(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        graph, path = self._write_graph(tmp_path)
        victim = f"{int(graph.edges[0][0])}-{int(graph.edges[0][1])}"
        out = tmp_path / "updated.txt"
        code = main(
            [
                "delta",
                str(path),
                "--delete",
                victim,
                "--insert",
                "0-29",
                "--grow-to",
                "31",
                "--insert",
                "5-30",
                "--out",
                str(out),
                "--plan",
                "common_neighbors",
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "delta" in captured
        assert out.exists()

    def test_delta_with_ledger_and_ledger_subcommand(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        graph, path = self._write_graph(tmp_path)
        existing = {(int(u), int(v)) for u, v in graph.edges.tolist()}
        u, v = next(
            (a, b)
            for a in range(graph.num_nodes)
            for b in range(a + 1, graph.num_nodes)
            if (a, b) not in existing
        )
        ledger_path = tmp_path / "ledger.json"
        ledger = PrivacyLedger(ledger_path)
        ledger.record_fit(
            graph,
            method="m",
            noise_multiplier=NM,
            sampling_rate=RATE,
            steps=10,
            delta=DELTA,
            epsilon=0.9,
        )
        code = main(
            ["delta", str(path), "--insert", f"{u}-{v}", "--ledger", str(ledger_path)]
        )
        assert code == 0
        assert len(PrivacyLedger(ledger_path)) == 2
        code = main(["ledger", str(ledger_path), "--entries"])
        assert code == 0
        captured = capsys.readouterr().out
        assert "fit" in captured

    def test_bad_edge_pair_rejected(self, tmp_path):
        from repro.experiments.__main__ import main

        _, path = self._write_graph(tmp_path)
        with pytest.raises(ConfigurationError):
            main(["delta", str(path), "--insert", "nonsense"])
