"""Tests for the SE-GEmb (non-private) and SE-PrivGEmb (private) trainers."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Graph,
    PrivacyConfig,
    SEGEmbTrainer,
    SEPrivGEmbTrainer,
    TrainingConfig,
    TrainingError,
)
from repro.proximity import DeepWalkProximity, DegreeProximity


class TestSEGEmbTrainer:
    def test_output_shapes(self, small_graph, fast_training_config):
        trainer = SEGEmbTrainer(small_graph, DegreeProximity(), config=fast_training_config, seed=0)
        result = trainer.train()
        assert result.embeddings.shape == (small_graph.num_nodes, 8)
        assert result.context_embeddings.shape == (small_graph.num_nodes, 8)
        assert result.epochs_run == fast_training_config.epochs
        assert len(result.losses) == fast_training_config.epochs
        assert np.all(np.isfinite(result.embeddings))

    def test_loss_decreases_with_training(self, small_graph):
        config = TrainingConfig(
            embedding_dim=16, batch_size=64, learning_rate=0.1, negative_samples=5, epochs=120
        )
        trainer = SEGEmbTrainer(small_graph, DeepWalkProximity(window_size=3), config=config, seed=0)
        result = trainer.train()
        early = float(np.mean(result.losses[:10]))
        late = float(np.mean(result.losses[-10:]))
        assert late < early

    def test_deterministic_given_seed(self, small_graph, fast_training_config):
        a = SEGEmbTrainer(small_graph, DegreeProximity(), config=fast_training_config, seed=3).train()
        b = SEGEmbTrainer(small_graph, DegreeProximity(), config=fast_training_config, seed=3).train()
        np.testing.assert_allclose(a.embeddings, b.embeddings)

    def test_accepts_precomputed_proximity(self, small_graph, fast_training_config):
        proximity = DeepWalkProximity(window_size=3).compute(small_graph)
        trainer = SEGEmbTrainer(small_graph, proximity, config=fast_training_config, seed=0)
        result = trainer.train(epochs=2)
        assert result.epochs_run == 2

    def test_unigram_negative_sampling_option(self, small_graph, fast_training_config):
        trainer = SEGEmbTrainer(
            small_graph,
            DegreeProximity(),
            config=fast_training_config,
            negative_sampling="unigram",
            seed=0,
        )
        result = trainer.train(epochs=3)
        assert result.embeddings.shape[0] == small_graph.num_nodes

    def test_invalid_inputs(self, small_graph, fast_training_config):
        empty = Graph(5, [])
        with pytest.raises(TrainingError):
            SEGEmbTrainer(empty, DegreeProximity(), config=fast_training_config)
        with pytest.raises(TrainingError):
            SEGEmbTrainer(
                small_graph, DegreeProximity(), config=fast_training_config, negative_sampling="bad"
            )
        trainer = SEGEmbTrainer(small_graph, DegreeProximity(), config=fast_training_config, seed=0)
        with pytest.raises(TrainingError):
            trainer.train(epochs=0)

    def test_final_loss_property(self, small_graph, fast_training_config):
        trainer = SEGEmbTrainer(small_graph, DegreeProximity(), config=fast_training_config, seed=0)
        result = trainer.train(epochs=2)
        assert result.final_loss == result.losses[-1]


class TestSEPrivGEmbTrainer:
    def test_output_shapes_and_privacy_report(self, small_graph, fast_training_config, fast_privacy_config):
        trainer = SEPrivGEmbTrainer(
            small_graph,
            DegreeProximity(),
            training_config=fast_training_config,
            privacy_config=fast_privacy_config,
            seed=0,
        )
        result = trainer.train()
        assert result.embeddings.shape == (small_graph.num_nodes, 8)
        assert result.privacy_spent.epsilon > 0
        assert result.privacy_spent.epsilon <= fast_privacy_config.epsilon + 1e-9
        assert result.epochs_run == len(result.losses)
        assert np.all(np.isfinite(result.embeddings))

    def test_budget_limits_epochs(self, small_graph, fast_training_config):
        tight = PrivacyConfig(epsilon=0.5, delta=1e-5, noise_multiplier=5.0, clipping_threshold=2.0)
        trainer = SEPrivGEmbTrainer(
            small_graph,
            DegreeProximity(),
            training_config=fast_training_config.with_updates(epochs=500),
            privacy_config=tight,
            seed=0,
        )
        allowed = trainer.max_private_epochs()
        result = trainer.train()
        assert result.epochs_run <= max(allowed, 0) + 1
        assert result.stopped_early
        assert result.epochs_run < 500

    def test_larger_budget_allows_more_epochs(self, small_graph, fast_training_config):
        def epochs_for(epsilon):
            trainer = SEPrivGEmbTrainer(
                small_graph,
                DegreeProximity(),
                training_config=fast_training_config.with_updates(epochs=10_000),
                privacy_config=PrivacyConfig(epsilon=epsilon),
                seed=0,
            )
            return trainer.max_private_epochs()

        assert epochs_for(0.5) < epochs_for(3.5)

    def test_privacy_spent_within_target(self, small_graph, fast_training_config):
        config = PrivacyConfig(epsilon=1.0)
        trainer = SEPrivGEmbTrainer(
            small_graph,
            DegreeProximity(),
            training_config=fast_training_config.with_updates(epochs=1000),
            privacy_config=config,
            seed=0,
        )
        result = trainer.train()
        assert result.privacy_spent.epsilon <= config.epsilon + 1e-9
        assert result.privacy_spent.delta == config.delta

    def test_deterministic_given_seed(self, small_graph, fast_training_config, fast_privacy_config):
        kwargs = dict(
            training_config=fast_training_config,
            privacy_config=fast_privacy_config,
            seed=9,
        )
        a = SEPrivGEmbTrainer(small_graph, DegreeProximity(), **kwargs).train()
        b = SEPrivGEmbTrainer(small_graph, DegreeProximity(), **kwargs).train()
        np.testing.assert_allclose(a.embeddings, b.embeddings)

    def test_naive_and_nonzero_strategies_differ(self, small_graph, fast_training_config, fast_privacy_config):
        nonzero = SEPrivGEmbTrainer(
            small_graph,
            DegreeProximity(),
            training_config=fast_training_config,
            privacy_config=fast_privacy_config,
            perturbation="nonzero",
            seed=4,
        ).train()
        naive = SEPrivGEmbTrainer(
            small_graph,
            DegreeProximity(),
            training_config=fast_training_config,
            privacy_config=fast_privacy_config,
            perturbation="naive",
            seed=4,
        ).train()
        assert not np.allclose(nonzero.embeddings, naive.embeddings)
        # The naive strategy injects dense noise with sensitivity B·C, so its
        # embeddings drift much further from the origin.
        assert np.linalg.norm(naive.embeddings) > np.linalg.norm(nonzero.embeddings)

    def test_iterate_averaging_toggle(self, small_graph, fast_training_config, fast_privacy_config):
        averaged = SEPrivGEmbTrainer(
            small_graph,
            DegreeProximity(),
            training_config=fast_training_config,
            privacy_config=fast_privacy_config,
            iterate_averaging=True,
            seed=5,
        ).train()
        last_iterate = SEPrivGEmbTrainer(
            small_graph,
            DegreeProximity(),
            training_config=fast_training_config,
            privacy_config=fast_privacy_config,
            iterate_averaging=False,
            seed=5,
        ).train()
        assert not np.allclose(averaged.embeddings, last_iterate.embeddings)
        assert np.linalg.norm(averaged.embeddings) <= np.linalg.norm(last_iterate.embeddings) + 1e-9

    def test_batch_normalization_mode(self, small_graph, fast_training_config, fast_privacy_config):
        trainer = SEPrivGEmbTrainer(
            small_graph,
            DegreeProximity(),
            training_config=fast_training_config,
            privacy_config=fast_privacy_config,
            gradient_normalization="batch",
            seed=0,
        )
        result = trainer.train(epochs=3)
        assert result.epochs_run <= 3

    def test_sampling_rate_matches_batch_over_edges(self, small_graph, fast_training_config, fast_privacy_config):
        trainer = SEPrivGEmbTrainer(
            small_graph,
            DegreeProximity(),
            training_config=fast_training_config,
            privacy_config=fast_privacy_config,
            seed=0,
        )
        expected = min(fast_training_config.batch_size, small_graph.num_edges) / small_graph.num_edges
        assert trainer.sampling_rate == pytest.approx(expected)

    def test_invalid_inputs(self, small_graph, fast_training_config, fast_privacy_config):
        with pytest.raises(TrainingError):
            SEPrivGEmbTrainer(
                Graph(4, []),
                DegreeProximity(),
                training_config=fast_training_config,
                privacy_config=fast_privacy_config,
            )
        with pytest.raises(TrainingError):
            SEPrivGEmbTrainer(
                small_graph,
                DegreeProximity(),
                training_config=fast_training_config,
                privacy_config=fast_privacy_config,
                gradient_normalization="bogus",
            )

    def test_deepwalk_proximity_variant_runs(self, small_graph, fast_training_config, fast_privacy_config):
        trainer = SEPrivGEmbTrainer(
            small_graph,
            DeepWalkProximity(window_size=3),
            training_config=fast_training_config,
            privacy_config=fast_privacy_config,
            seed=0,
        )
        result = trainer.train(epochs=3)
        assert result.embeddings.shape == (small_graph.num_nodes, 8)
