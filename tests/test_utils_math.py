"""Tests for numerically stable math utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.math import (
    clip_norm,
    log_sigmoid,
    pairwise_euclidean,
    row_l2_norms,
    sigmoid,
    softmax,
    stable_log,
)


class TestSigmoid:
    def test_matches_definition_in_moderate_range(self):
        x = np.linspace(-10, 10, 41)
        expected = 1.0 / (1.0 + np.exp(-x))
        np.testing.assert_allclose(sigmoid(x), expected, rtol=1e-12)

    def test_extreme_values_do_not_overflow(self):
        assert sigmoid(1e6) == pytest.approx(1.0)
        assert sigmoid(-1e6) == pytest.approx(0.0)

    def test_symmetry(self):
        x = np.array([-3.0, -1.0, 0.0, 1.0, 3.0])
        np.testing.assert_allclose(sigmoid(x) + sigmoid(-x), np.ones_like(x), rtol=1e-12)


class TestLogSigmoid:
    def test_matches_log_of_sigmoid(self):
        x = np.linspace(-20, 20, 81)
        np.testing.assert_allclose(log_sigmoid(x), np.log(sigmoid(x)), atol=1e-10)

    def test_no_overflow_for_large_negatives(self):
        value = log_sigmoid(-1000.0)
        assert np.isfinite(value)
        assert value == pytest.approx(-1000.0, rel=1e-6)

    def test_zero_input(self):
        assert float(log_sigmoid(0.0)) == pytest.approx(np.log(0.5))


class TestSoftmax:
    def test_rows_sum_to_one(self, rng):
        x = rng.normal(size=(5, 7))
        out = softmax(x, axis=1)
        np.testing.assert_allclose(out.sum(axis=1), np.ones(5), rtol=1e-12)

    def test_shift_invariance(self, rng):
        x = rng.normal(size=10)
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0), rtol=1e-9)


class TestStableLog:
    def test_floors_at_given_value(self):
        assert stable_log(0.0, floor=1e-12) == pytest.approx(np.log(1e-12))

    def test_passes_through_positive_values(self):
        assert stable_log(2.0) == pytest.approx(np.log(2.0))


class TestClipNorm:
    def test_leaves_small_vectors_untouched(self):
        v = np.array([0.1, 0.2])
        np.testing.assert_allclose(clip_norm(v, 1.0), v)

    def test_scales_large_vectors_to_threshold(self):
        v = np.array([3.0, 4.0])  # norm 5
        clipped = clip_norm(v, 1.0)
        assert np.linalg.norm(clipped) == pytest.approx(1.0)
        np.testing.assert_allclose(clipped, v / 5.0)

    def test_matrix_clipping_uses_global_norm(self):
        m = np.ones((2, 2)) * 10.0
        clipped = clip_norm(m, 2.0)
        assert np.linalg.norm(clipped) == pytest.approx(2.0)

    def test_rejects_non_positive_threshold(self):
        with pytest.raises(ValueError):
            clip_norm(np.ones(3), 0.0)


class TestRowL2Norms:
    def test_known_values(self):
        m = np.array([[3.0, 4.0], [0.0, 0.0], [1.0, 0.0]])
        np.testing.assert_allclose(row_l2_norms(m), [5.0, 0.0, 1.0])

    def test_rejects_1d_input(self):
        with pytest.raises(ValueError):
            row_l2_norms(np.ones(4))


class TestPairwiseEuclidean:
    def test_matches_naive_computation(self, rng):
        x = rng.normal(size=(12, 4))
        fast = pairwise_euclidean(x)
        naive = np.sqrt(((x[:, None, :] - x[None, :, :]) ** 2).sum(-1))
        np.testing.assert_allclose(fast, naive, atol=1e-6)

    def test_diagonal_is_zero(self, rng):
        x = rng.normal(size=(6, 3))
        np.testing.assert_allclose(np.diag(pairwise_euclidean(x)), np.zeros(6), atol=1e-9)

    def test_symmetry(self, rng):
        x = rng.normal(size=(8, 5))
        d = pairwise_euclidean(x)
        np.testing.assert_allclose(d, d.T, atol=1e-10)
