"""Tests for RNG handling, statistics accumulators, timers and logging helpers."""

from __future__ import annotations

import logging
import time

import numpy as np
import pytest

from repro.utils.logging import get_logger
from repro.utils.rng import ensure_rng, repeat_streams, spawn_rngs
from repro.utils.stats import RunningStats, summarize_runs
from repro.utils.timer import Timer


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_allclose(a, b)

    def test_existing_generator_is_passed_through(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        a = ensure_rng(np.random.SeedSequence(3)).random(4)
        b = ensure_rng(np.random.SeedSequence(3)).random(4)
        np.testing.assert_allclose(a, b)


class TestRepeatStreams:
    def _first_draws(self, seed, repeats):
        trains, eval_stream = repeat_streams(seed, repeats)
        train_draws = [int(np.random.default_rng(s).integers(0, 2**62)) for s in trains]
        eval_draw = int(np.random.default_rng(eval_stream).integers(0, 2**62))
        return train_draws, eval_draw

    def test_counts(self):
        trains, eval_stream = repeat_streams(0, 5)
        assert len(trains) == 5
        assert isinstance(eval_stream, np.random.SeedSequence)

    def test_adjacent_base_seeds_never_collide(self):
        # the additive seed+repeat convention this replaces had
        # (seed=0, repeat=1) == (seed=1, repeat=0)
        draws_0, eval_0 = self._first_draws(0, 3)
        draws_1, eval_1 = self._first_draws(1, 3)
        assert len(set(draws_0) | set(draws_1) | {eval_0, eval_1}) == 8

    def test_deterministic(self):
        assert self._first_draws(9, 4) == self._first_draws(9, 4)

    def test_accepts_seed_sequence_and_generator(self):
        seq_draws = self._first_draws(np.random.SeedSequence(5), 2)
        assert seq_draws == self._first_draws(np.random.SeedSequence(5), 2)
        gen_draws = self._first_draws(np.random.default_rng(5), 2)
        assert gen_draws == self._first_draws(np.random.default_rng(5), 2)

    def test_rejects_non_positive_repeats(self):
        with pytest.raises(ValueError):
            repeat_streams(0, 0)


class TestSpawnRngs:
    def test_count_and_independence(self):
        rngs = spawn_rngs(7, 3)
        assert len(rngs) == 3
        draws = [r.random(4).tolist() for r in rngs]
        assert draws[0] != draws[1]
        assert draws[1] != draws[2]

    def test_deterministic_given_seed(self):
        a = [r.random(3).tolist() for r in spawn_rngs(5, 2)]
        b = [r.random(3).tolist() for r in spawn_rngs(5, 2)]
        assert a == b

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)


class TestRunningStats:
    def test_mean_and_std_match_numpy(self, rng):
        values = rng.normal(3.0, 2.0, size=50)
        stats = RunningStats()
        stats.extend(values)
        assert stats.count == 50
        assert stats.mean == pytest.approx(float(values.mean()), rel=1e-9)
        assert stats.std == pytest.approx(float(values.std(ddof=1)), rel=1e-9)

    def test_empty_stats_are_zero(self):
        stats = RunningStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.std == 0.0

    def test_single_observation_has_zero_variance(self):
        stats = RunningStats()
        stats.update(4.2)
        assert stats.mean == pytest.approx(4.2)
        assert stats.variance == 0.0


class TestSummarizeRuns:
    def test_mean_std_and_count(self):
        summary = summarize_runs([1.0, 2.0, 3.0])
        assert summary.mean == pytest.approx(2.0)
        assert summary.std == pytest.approx(1.0)
        assert summary.count == 3

    def test_single_run_has_zero_std(self):
        summary = summarize_runs([0.7])
        assert summary.std == 0.0

    def test_empty_runs(self):
        summary = summarize_runs([])
        assert summary.count == 0

    def test_str_formats_like_paper_cells(self):
        assert str(summarize_runs([0.45, 0.45])) == "0.4500±0.0000"


class TestTimer:
    def test_context_manager_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.005

    def test_start_stop(self):
        t = Timer()
        t.start()
        time.sleep(0.005)
        elapsed = t.stop()
        assert elapsed > 0.0
        assert t.elapsed == elapsed

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()


class TestGetLogger:
    def test_namespaces_under_repro(self):
        logger = get_logger("something")
        assert logger.name == "repro.something"

    def test_keeps_existing_repro_prefix(self):
        logger = get_logger("repro.embedding")
        assert logger.name == "repro.embedding"

    def test_returns_standard_logger(self):
        assert isinstance(get_logger("x"), logging.Logger)
